//! E13 — the fault-model matrix off the symmetric zoo: real-world and
//! scale-free substrates.
//!
//! Every theorem in the paper is proved on a structured family (hypercube,
//! mesh, trees, `G(n,p)`), and E11 already reruns the headline grids under
//! the four pluggable fault models — but still on those same families. This
//! experiment runs the identical four-model matrix on substrates the paper
//! *couldn't* treat: a loaded real dataset (Zachary's karate club), a
//! Barabási–Albert scale-free graph, a `k`-ary fat-tree, and a random
//! `d`-regular graph, all materialised as
//! [`faultnet_topology::explicit::ExplicitGraph`] through `topology::load`
//! (so the adjacency-slot `edge_index` gives them the bitset/multispin fast
//! paths for free).
//!
//! What to read off the tables, against the structured-family anchors:
//!
//! * **Giant thresholds follow the degree distribution, not the paper's
//!   symmetric formulas.** The Molloy–Reed criterion puts the edge-retention
//!   threshold at `p_c ≈ ⟨k⟩/(⟨k²⟩−⟨k⟩)`, computed here exactly from each
//!   substrate's degree sequence. For the `d`-regular graph this is
//!   `1/(d−1)` (the hypercube's `p ≈ 1/n` is the same formula at `⟨k⟩ = n`);
//!   for the BA graph the heavy tail drives `⟨k²⟩` up and the threshold
//!   toward zero — the scale-free robustness the AS-graph literature
//!   reports, visible here as a giant column that stays warm at `p` values
//!   where the regular substrate has already shattered.
//! * **Degree heterogeneity decides the adversary column.** The budget-`B`
//!   adversary disconnects any terminal of degree `≤ B`: fat-tree hosts
//!   have degree 1, so its probe column collapses to `-` at every `p`,
//!   while the karate hubs (degree 16/17) shrug the same budget off. On
//!   symmetric families (every vertex degree `n`) this distinction is
//!   invisible — it is the headline qualitative effect of leaving the zoo
//!   (cf. the mesh router-failure analysis of arXiv:1301.5993 and the
//!   non-benign-fault measurements of arXiv:2307.05547).
//! * **Node vs edge faults separate sharply on hubs.** Killing one hub
//!   removes `deg(hub)` edges at once, so the node-fault giant column sits
//!   below the edge column by more than the survival factor on the karate
//!   and BA substrates — another effect the symmetric zoo suppresses.

use faultnet_analysis::phase::crossing_point;
use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_faultmodel::{FaultModel, FaultModelSpec};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::bfs::FloodRouter;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_topology::explicit::ExplicitGraph;
use faultnet_topology::load::SubstrateSpec;
use faultnet_topology::Topology;

use crate::exec::TrialExec;
use crate::hypercube_giant::measure_giant_point_with_model;
use crate::report::{Effort, ExperimentReport};

/// Molloy–Reed edge-percolation threshold estimate for an arbitrary degree
/// sequence: `⟨k⟩ / (⟨k²⟩ − ⟨k⟩)`. Exact asymptotically for random graphs
/// with that degree distribution; on `d`-regular substrates it reduces to
/// `1/(d−1)` and on the hypercube's degree-`n` sequence to `1/(n−1)` — the
/// paper's §1.2 anchors. Returns `NaN` for degenerate sequences (`⟨k²⟩ ≤
/// ⟨k⟩`, e.g. a perfect matching), which [`fmt_float`] renders as `-`.
pub fn molloy_reed_threshold<T: Topology>(graph: &T) -> f64 {
    let n = graph.num_vertices() as f64;
    let (mut k1, mut k2) = (0.0, 0.0);
    for v in graph.vertices() {
        let d = graph.degree(v) as f64;
        k1 += d;
        k2 += d * d;
    }
    let (mean, second) = (k1 / n, k2 / n);
    if second > mean {
        mean / (second - mean)
    } else {
        f64::NAN
    }
}

/// The E13 experiment.
#[derive(Debug, Clone)]
pub struct RealWorldExperiment {
    /// Substrates to measure (rows of the stats/probe tables; one giant
    /// table each), resolved through [`SubstrateSpec`].
    pub substrates: Vec<SubstrateSpec>,
    /// Models to compare (columns, in [`FaultModelSpec::ALL`] order unless
    /// restricted by `--fault-model`).
    pub models: Vec<FaultModelSpec>,
    /// Survival probabilities for the giant-fraction scan.
    pub ps: Vec<f64>,
    /// Trials per giant point.
    pub trials: u32,
    /// Survival probability for the probe table (supercritical, so the
    /// flood router usually has a component to traverse).
    pub probe_p: f64,
    /// Trials per probe cell.
    pub probe_trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads (1 = sequential census; the reported
    /// numbers are identical for every value).
    pub census_threads: usize,
    /// Trial-batch lane request (0 = scalar engine; the reported numbers
    /// are identical for every value — the adversarial column always runs
    /// scalar, by [`FaultModel::lane_batchable`]).
    pub trial_batch: usize,
}

impl RealWorldExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        RealWorldExperiment {
            substrates: effort.pick(
                SubstrateSpec::E13_QUICK.to_vec(),
                SubstrateSpec::E13_FULL.to_vec(),
            ),
            models: FaultModelSpec::ALL.to_vec(),
            ps: effort.pick(
                vec![0.15, 0.30, 0.50, 0.70, 0.90],
                vec![
                    0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90,
                ],
            ),
            trials: effort.pick(6, 20),
            probe_p: 0.9,
            probe_trials: effort.pick(8, 30),
            base_seed: 0xFA13,
            threads: 1,
            census_threads: 1,
            trial_batch: 0,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Sets the trial-batch lane request (the `--trial-batch` knob;
    /// 0 keeps the scalar engine).
    #[must_use]
    pub fn with_trial_batch(mut self, trial_batch: usize) -> Self {
        self.trial_batch = trial_batch;
        self
    }

    /// Restricts the comparison to one model (the `--fault-model` knob);
    /// `None` keeps all models side by side.
    #[must_use]
    pub fn with_fault_model(mut self, model: Option<FaultModelSpec>) -> Self {
        if let Some(spec) = model {
            self.models = vec![spec];
        }
        self
    }

    /// The execution knobs this configuration runs under.
    fn exec(&self) -> TrialExec {
        TrialExec::sequential()
            .with_threads(self.threads)
            .with_census_threads(self.census_threads)
            .with_trial_batch(self.trial_batch)
    }

    /// Measures the flood-router probe cell for one substrate under one
    /// model at [`Self::probe_p`], on the substrate's canonical pair.
    fn probe_cell<M: FaultModel + Sync + ?Sized>(
        &self,
        graph: &ExplicitGraph,
        model: &M,
        seed: u64,
    ) -> f64 {
        let (u, v) = graph.canonical_pair();
        let harness =
            ComplexityHarness::new(graph.clone(), PercolationConfig::new(self.probe_p, seed))
                .with_census_threads(self.census_threads);
        let router = FloodRouter::new();
        let exec = self.exec();
        let stats = if exec.batched() {
            harness.measure_batched_with_model(
                model,
                &router,
                u,
                v,
                self.probe_trials,
                exec.trial_batch,
                exec.threads,
            )
        } else {
            harness.measure_parallel_with_model(
                model,
                &router,
                u,
                v,
                self.probe_trials,
                exec.threads,
            )
        };
        Summary::from_counts(stats.probe_counts().iter().copied()).mean()
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.real_world");
        let mut report = ExperimentReport::new(
            "E13: fault-model matrix on real-world and scale-free substrates",
            "the E11 four-model grid off the symmetric zoo — loaded, preferential-attachment, \
             fat-tree, and random-regular substrates vs the paper's structured-family anchors",
        );
        let built: Vec<(FaultModelSpec, Box<dyn FaultModel + Send + Sync>)> =
            self.models.iter().map(|s| (*s, s.build())).collect();
        // Seed offsets key on the model's *canonical* index, not its position
        // in the (possibly --fault-model-restricted) column list, so a
        // single-model rerun byte-reproduces its column of the full matrix.
        let canonical_index = |spec: FaultModelSpec| -> u64 {
            FaultModelSpec::ALL
                .iter()
                .position(|s| *s == spec)
                .expect("specs come from FaultModelSpec::ALL") as u64
        };
        let graphs: Vec<(SubstrateSpec, ExplicitGraph)> = self
            .substrates
            .iter()
            .map(|spec| (*spec, spec.build()))
            .collect();

        // Table 1: the substrates themselves, with the degree statistics the
        // thresholds are read against.
        let mut stats_table = Table::new([
            "substrate",
            "vertices",
            "edges",
            "max deg",
            "mean deg",
            "Molloy-Reed p_c",
        ])
        .with_title("substrate statistics (p_c = <k>/(<k^2>-<k>); regular: 1/(d-1))".to_string());
        for (spec, graph) in &graphs {
            let n = graph.num_vertices();
            stats_table.push_row([
                spec.canonical_name(),
                n.to_string(),
                graph.num_edges().to_string(),
                graph.max_degree().to_string(),
                fmt_float(2.0 * graph.num_edges() as f64 / n as f64),
                fmt_float(molloy_reed_threshold(graph)),
            ]);
        }
        report.push_table(stats_table);

        // One giant-fraction table per substrate, one column per model.
        for (si, (spec, graph)) in graphs.iter().enumerate() {
            let mut table = Table::new(
                std::iter::once("p".to_string())
                    .chain(built.iter().map(|(s, _)| format!("{s} giant")))
                    .collect::<Vec<_>>(),
            )
            .with_title(format!(
                "{} giant fraction per fault model ({} trials)",
                spec.canonical_name(),
                self.trials
            ));
            let mut edge_curve = Vec::new();
            for (pi, &p) in self.ps.iter().enumerate() {
                let mut row = vec![format!("{p:.2}")];
                for (mspec, model) in &built {
                    let point = measure_giant_point_with_model(
                        model,
                        graph,
                        p,
                        self.trials,
                        self.base_seed
                            .wrapping_add((si as u64) << 32)
                            .wrapping_add((pi as u64) << 8)
                            .wrapping_add(canonical_index(*mspec)),
                        self.exec(),
                    );
                    row.push(fmt_float(point.giant_fraction));
                    if *mspec == FaultModelSpec::BernoulliEdges {
                        edge_curve.push((p, point.giant_fraction));
                    }
                }
                table.push_row(row);
            }
            report.push_table(table);
            if let Some(p_star) = crossing_point(&edge_curve, 0.5) {
                report.push_note(format!(
                    "{}: bernoulli-edges giant fraction crosses 0.5 at p ≈ {p_star:.2} \
                     (Molloy–Reed predicts p_c ≈ {}; hypercube anchor 1/n, mesh anchor \
                     p_c² = 1/2)",
                    spec.canonical_name(),
                    fmt_float(molloy_reed_threshold(graph)),
                ));
            }
        }

        // Probe table: flood-router mean probes on the canonical pair at the
        // supercritical probe_p, one row per substrate, one column per model.
        let mut probes = Table::new(
            std::iter::once("substrate".to_string())
                .chain(built.iter().map(|(s, _)| format!("{s} probes")))
                .collect::<Vec<_>>(),
        )
        .with_title(format!(
            "flood-router probes on the canonical pair, p = {} ({} trials)",
            self.probe_p, self.probe_trials
        ));
        for (si, (spec, graph)) in graphs.iter().enumerate() {
            let mut row = vec![spec.canonical_name()];
            for (mspec, model) in &built {
                let seed = self
                    .base_seed
                    .wrapping_add(0xE13)
                    .wrapping_add((si as u64) << 16)
                    .wrapping_add(canonical_index(*mspec) << 4);
                row.push(fmt_float(self.probe_cell(graph, model.as_ref(), seed)));
            }
            probes.push_row(row);
        }
        report.push_table(probes);

        report.push_note(
            "Thresholds track the degree distribution, not the paper's symmetric formulas: \
             the regular substrate shatters at 1/(d-1) while the scale-free BA giant \
             persists far below it (heavy-tailed <k^2> drives the Molloy–Reed p_c toward 0)."
                .to_string(),
        );
        report.push_note(
            "Degree heterogeneity decides the adversary: a budget-3 cut disconnects any \
             degree-<=3 terminal (fat-tree hosts have degree 1, so its adversarial probe \
             cell is `-`), while the karate hubs (degree 16/17) are untouchable — an effect \
             invisible on the degree-symmetric families of E11."
                .to_string(),
        );
        for (spec, model) in &built {
            // Record the shape parameters behind each parameterised column.
            if model.name() != spec.cli_name() {
                report.push_note(format!("{spec} = {}", model.name()));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultnet_topology::load::{fat_tree, random_regular};

    #[test]
    fn molloy_reed_matches_the_closed_forms() {
        // d-regular: 1/(d-1).
        let reg = random_regular(64, 4, 1);
        assert!((molloy_reed_threshold(&reg) - 1.0 / 3.0).abs() < 1e-12);
        // Hypercube H_n: every degree n, so 1/(n-1).
        let cube = faultnet_topology::hypercube::Hypercube::new(8);
        assert!((molloy_reed_threshold(&cube) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quick_report_has_one_giant_table_per_substrate() {
        let report = RealWorldExperiment::quick().run();
        let substrates = RealWorldExperiment::quick().substrates.len();
        // Stats table + one giant table per substrate + the probe table.
        assert_eq!(report.tables().len(), substrates + 2);
        assert_eq!(
            report.tables()[1].num_columns(),
            1 + FaultModelSpec::ALL.len()
        );
        assert!(report.render().contains("karate"));
        assert!(report.render().contains("fattree-4"));
        assert!(report.render_markdown().contains("### E13"));
    }

    #[test]
    fn fault_model_restriction_narrows_the_columns() {
        let report = RealWorldExperiment::quick()
            .with_fault_model(Some(FaultModelSpec::AdversarialBudget))
            .run();
        assert_eq!(report.tables()[1].num_columns(), 2);
        assert!(!report.render().contains("bernoulli-nodes giant"));
    }

    #[test]
    fn restricted_run_reproduces_its_full_matrix_column() {
        // Seed offsets key on the canonical model index, so rerunning one
        // model with --fault-model must byte-reproduce its column of the
        // full side-by-side matrix (skipping the model-agnostic stats table).
        let full = RealWorldExperiment::quick().run();
        let only = RealWorldExperiment::quick()
            .with_fault_model(Some(FaultModelSpec::BernoulliNodes))
            .run();
        let column = 1 + FaultModelSpec::ALL
            .iter()
            .position(|s| *s == FaultModelSpec::BernoulliNodes)
            .unwrap();
        for (full_table, only_table) in full
            .tables()
            .iter()
            .skip(1)
            .zip(only.tables().iter().skip(1))
        {
            for (full_row, only_row) in full_table.rows().iter().zip(only_table.rows()) {
                assert_eq!(
                    full_row[column], only_row[1],
                    "restricted node-fault column diverged from the full matrix"
                );
            }
        }
    }

    #[test]
    fn batched_matrix_is_byte_identical_to_scalar() {
        // The explicit substrates take the multispin engine through their
        // adjacency-slot edge_index; the adversarial column exercises the
        // scalar fallback inside an otherwise-batched run. Either way the
        // rendered report must not move by a byte — and neither knob of the
        // trial fan-out may.
        let scalar = RealWorldExperiment::quick().run().render();
        for trial_batch in [1, 64] {
            let batched = RealWorldExperiment::quick()
                .with_trial_batch(trial_batch)
                .with_threads(2)
                .run()
                .render();
            assert_eq!(scalar, batched, "trial_batch {trial_batch}");
        }
    }

    #[test]
    fn adversary_disconnects_the_degree_one_fat_tree_host() {
        // The canonical pair's far endpoint is the last host (degree 1); a
        // budget-3 adversary always severs it, so no trial conditions and
        // the probe mean is NaN (rendered `-`).
        let experiment = RealWorldExperiment::quick();
        let tree = fat_tree(4);
        let adversary = FaultModelSpec::AdversarialBudget.build();
        let cell = experiment.probe_cell(&tree, adversary.as_ref(), 1);
        assert!(cell.is_nan(), "expected a disconnected pair, got {cell}");
        // The benign edge model at p = 0.9 does condition on a 36-vertex
        // graph within 8 trials.
        let edges = FaultModelSpec::BernoulliEdges.build();
        let benign = experiment.probe_cell(&tree, edges.as_ref(), 1);
        assert!(benign.is_finite(), "edge-fault pair never connected");
    }
}
