//! Shared command-line handling for the experiment binaries.
//!
//! Every `exp_*` binary (and `run_all`) accepts the same flags:
//!
//! * `--quick` — run the reduced configuration (seconds) instead of the
//!   `full()` grids recorded in `docs/EXPERIMENTS.md`.
//! * `--threads N` (or `--threads=N`) — fan conditioned trials / sweep
//!   points across `N` worker threads. `N = 0` (the default) means "one
//!   worker per available core". Because the parallel harness merges trial
//!   results in deterministic order, the emitted tables are identical for
//!   every thread count — the knob only changes wall-clock time.
//! * `--census-threads N` (or `--census-threads=N`) — run each
//!   *intra-instance* component census (giant scans, threshold bisections,
//!   census-based conditioning) on `N` workers through
//!   `ComponentCensus::compute_parallel`. `N = 0` means "one worker per
//!   available core"; the default of 1 keeps the sequential census, which
//!   wins below roughly the n = 14 hypercube where per-census thread
//!   spawning costs more than it saves. The parallel census is
//!   bit-identical to the sequential one (canonical min-vertex component
//!   labels), so this knob, like `--threads`, never changes a single
//!   emitted byte.
//! * `--trial-batch N` (or `--trial-batch=N`) — run trial fan-outs through
//!   the trial-batched (multispin) percolation engine, packing up to
//!   `min(N, 64)` consecutive trials into one transposed bitset word per
//!   edge. Consumed by the trial-fan-out binaries (`exp_hypercube_giant`,
//!   `exp_mesh_threshold`, `exp_fault_models`, `exp_real_world`) and by
//!   `run_all`; the others
//!   warn on stderr ([`ExpArgs::warn_trial_batch_ignored`]). `N = 0` (the
//!   default) keeps the scalar engine. The batched engine is bit-identical
//!   to the scalar one — every emitted byte is the same for every `N` —
//!   and the adversarial fault-model column always stays on the scalar
//!   reference path.
//! * `--rescan` — force a from-scratch component census at every churn
//!   timestep instead of the incremental (rewindable union-find) engine.
//!   Consumed by `exp_churn`; every other binary has no churn loop and
//!   warns on stderr ([`ExpArgs::warn_rescan_ignored`]). The incremental
//!   engine is bit-identical to the rescans — every emitted byte is the
//!   same with and without the flag — so this knob only changes wall-clock
//!   time (and serves CI as the equivalence cross-check).
//! * `--markdown` — render the report as Markdown instead of plain text.
//! * `--fault-model NAME` (or `--fault-model=NAME`) — select one named
//!   fault model (`bernoulli-edges`, `bernoulli-nodes`,
//!   `correlated-regions`, `adversarial-budget`). Consumed by
//!   `exp_fault_models` and `exp_real_world` (absent = all models side by
//!   side); the E1–E10
//!   reproduction binaries always measure the paper's Bernoulli edge
//!   faults and warn on stderr if the flag is passed
//!   ([`ExpArgs::warn_fault_model_ignored`]).
//! * `--trace FILE` (or `--trace=FILE`) — turn on the `faultnet_obs`
//!   instrumentation layer and write a Chrome-trace JSON file (load it at
//!   `chrome://tracing` or <https://ui.perfetto.dev>) when the run
//!   finishes. The instrumentation never touches a measurement: every
//!   stdout byte is identical with and without the flag (the differential
//!   suite in `tests/obs_differential.rs` enforces this).
//! * `--obs-summary` — turn on the counting layer and print the
//!   counter/histogram/span summary table to stderr after the report.
//!   Composable with `--trace`; like it, guaranteed not to change a single
//!   stdout byte.

use faultnet_faultmodel::FaultModelSpec;

use crate::report::Effort;

/// Parsed experiment-binary arguments.
///
/// # Examples
///
/// ```
/// use faultnet_experiments::cli::ExpArgs;
/// use faultnet_experiments::report::Effort;
///
/// let args = ExpArgs::parse(["--quick", "--threads", "4"].map(String::from));
/// assert_eq!(args.effort, Effort::Quick);
/// assert_eq!(args.threads, 4);
/// assert_eq!(args.census_threads, 1);
/// assert!(!args.markdown);
///
/// let args = ExpArgs::parse(["--census-threads", "4"].map(String::from));
/// assert_eq!(args.census_threads, 4);
///
/// let args = ExpArgs::parse(["--threads=2", "--markdown"].map(String::from));
/// assert_eq!(args.effort, Effort::Full);
/// assert_eq!(args.threads, 2);
/// assert!(args.markdown);
///
/// let args = ExpArgs::parse(["--fault-model", "bernoulli-nodes"].map(String::from));
/// assert_eq!(
///     args.fault_model,
///     Some(faultnet_faultmodel::FaultModelSpec::BernoulliNodes)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpArgs {
    /// Effort level: `Quick` when `--quick` was passed, `Full` otherwise.
    pub effort: Effort,
    /// Worker-thread count, already resolved: `--threads 0` and an absent
    /// flag both resolve to the number of available cores (at least 1).
    pub threads: usize,
    /// Intra-instance census thread count, already resolved: absent = 1
    /// (sequential census), `--census-threads 0` = one worker per core.
    pub census_threads: usize,
    /// Trial-batch lane request: `0` (absent flag) = scalar engine,
    /// `N >= 1` = the multispin engine with `min(N, 64)` lanes per word.
    pub trial_batch: usize,
    /// Whether `--rescan` was passed: force from-scratch per-timestep
    /// censuses in the churn experiment instead of the incremental engine
    /// (bit-identical output, different wall clock).
    pub rescan: bool,
    /// Whether `--markdown` was passed.
    pub markdown: bool,
    /// The fault model selected with `--fault-model`, if any. `None` means
    /// the binary's default (Bernoulli edge faults for the paper
    /// reproductions; every model side by side for `exp_fault_models` and
    /// `exp_real_world`).
    pub fault_model: Option<FaultModelSpec>,
    /// Chrome-trace output path from `--trace FILE`, if any. `Some` turns
    /// on span capture for the whole run; the file is written by
    /// [`ExpArgs::finish_obs`].
    pub trace: Option<String>,
    /// Whether `--obs-summary` was passed: print the observability
    /// counter/span table to stderr after the report.
    pub obs_summary: bool,
}

impl ExpArgs {
    /// Parses the given argument list (flags may appear in any order;
    /// unknown flags produce a warning on stderr and are skipped).
    ///
    /// The numeric value flags (`--threads`, `--census-threads`,
    /// `--trial-batch`) obey one shared lookahead rule in their space-form,
    /// the same rule `--fault-model` uses: the next token is consumed as the
    /// value unless it is itself a flag. A malformed value therefore warns
    /// **exactly once** (it is not re-reported as an unknown argument), and
    /// a dangling flag — final token, or immediately followed by another
    /// flag — warns once on stderr and swallows nothing, exactly like the
    /// `=`-form's `value.parse().unwrap_or_else(warn)`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut effort = Effort::Full;
        let mut rescan = false;
        let mut markdown = false;
        let mut threads: usize = 0;
        // 1 = sequential census (the default); 0 = auto, resolved below.
        let mut census_threads: usize = 1;
        // 0 = scalar engine (the default); N >= 1 = batched with min(N, 64)
        // lanes. Deliberately *not* auto-resolved: batching is opt-in.
        let mut trial_batch: usize = 0;
        let mut fault_model = None;
        let mut trace: Option<String> = None;
        let mut obs_summary = false;
        let mut parse_model = |value: &str| match FaultModelSpec::parse(value) {
            Ok(spec) => fault_model = Some(spec),
            Err(message) => eprintln!("{message}; using the default"),
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => effort = Effort::Quick,
                "--rescan" => rescan = true,
                "--markdown" => markdown = true,
                "--threads" => {
                    let (value, consumed) = take_numeric_value(&args, i, "--threads", "using auto");
                    if let Some(n) = value {
                        threads = n;
                    }
                    i += consumed;
                }
                "--census-threads" => {
                    let (value, consumed) =
                        take_numeric_value(&args, i, "--census-threads", "using the default of 1");
                    if let Some(n) = value {
                        census_threads = n;
                    }
                    i += consumed;
                }
                "--trial-batch" => {
                    let (value, consumed) =
                        take_numeric_value(&args, i, "--trial-batch", "keeping the scalar engine");
                    if let Some(n) = value {
                        trial_batch = n;
                    }
                    i += consumed;
                }
                "--obs-summary" => obs_summary = true,
                "--trace" => {
                    // Same lookahead rule as --fault-model: consume the next
                    // token as the path unless it is itself a flag, so a
                    // valueless `--trace --markdown` warns once and does not
                    // swallow the next flag.
                    match args.get(i + 1).map(String::as_str) {
                        Some(value) if !value.starts_with("--") => {
                            trace = Some(value.to_string());
                            i += 1;
                        }
                        _ => eprintln!("--trace expects a file path; tracing stays off"),
                    }
                }
                "--fault-model" => {
                    // Same lookahead rule as --threads: consume the next
                    // token as the value unless it is itself a flag, so a
                    // misspelled model name warns exactly once and a
                    // valueless `--fault-model --markdown` does not swallow
                    // the next flag.
                    match args.get(i + 1).map(String::as_str) {
                        Some(value) if !value.starts_with("--") => {
                            parse_model(value);
                            i += 1;
                        }
                        other => parse_model(other.unwrap_or("<missing>")),
                    }
                }
                other => {
                    if let Some(value) = other.strip_prefix("--threads=") {
                        threads = value.parse().unwrap_or_else(|_| {
                            eprintln!("--threads expects a number; using auto");
                            0
                        });
                    } else if let Some(value) = other.strip_prefix("--census-threads=") {
                        census_threads = value.parse().unwrap_or_else(|_| {
                            eprintln!("--census-threads expects a number; using the default of 1");
                            1
                        });
                    } else if let Some(value) = other.strip_prefix("--trial-batch=") {
                        trial_batch = value.parse().unwrap_or_else(|_| {
                            eprintln!("--trial-batch expects a number; keeping the scalar engine");
                            0
                        });
                    } else if let Some(value) = other.strip_prefix("--fault-model=") {
                        parse_model(value);
                    } else if let Some(value) = other.strip_prefix("--trace=") {
                        if value.is_empty() {
                            eprintln!("--trace expects a file path; tracing stays off");
                        } else {
                            trace = Some(value.to_string());
                        }
                    } else {
                        eprintln!("ignoring unknown argument {other:?}");
                    }
                }
            }
            i += 1;
        }
        ExpArgs {
            effort,
            threads: resolve_threads(threads),
            census_threads: resolve_census_threads(census_threads),
            trial_batch,
            rescan,
            markdown,
            fault_model,
            trace,
            obs_summary,
        }
    }

    /// Parses the process arguments (`std::env::args`, program name
    /// skipped).
    pub fn parse_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Renders `report` to stdout in the requested format.
    pub fn print(&self, report: &crate::report::ExperimentReport) {
        if self.markdown {
            println!("{}", report.render_markdown());
        } else {
            println!("{}", report.render());
        }
    }

    /// Warns on stderr when `--fault-model` was passed to a binary that does
    /// not consume it. The E1–E10 reproduction binaries (and `run_all`)
    /// always measure the configuration their experiment defines —
    /// silently accepting the flag would let a user believe they measured
    /// node faults when they measured the paper's model.
    pub fn warn_fault_model_ignored(&self, binary: &str) {
        if let Some(spec) = self.fault_model {
            eprintln!(
                "--fault-model {spec} is ignored by {binary}; \
                 use exp_fault_models to measure under other fault models"
            );
        }
    }

    /// Warns on stderr when `--trial-batch` was passed to a binary whose
    /// experiment has no trial fan-out to batch (single-instance analyses,
    /// distance scans). Mirrors [`ExpArgs::warn_fault_model_ignored`]:
    /// silently accepting the flag would let a user believe the batched
    /// engine ran when nothing batched.
    pub fn warn_trial_batch_ignored(&self, binary: &str) {
        if self.trial_batch > 0 {
            eprintln!(
                "--trial-batch {} is ignored by {binary}; the trial-batched \
                 engine applies to the trial-fan-out experiments \
                 (exp_hypercube_giant, exp_mesh_threshold, exp_fault_models, \
                 exp_real_world)",
                self.trial_batch
            );
        }
    }

    /// Turns the observability layer on if `--trace` or `--obs-summary`
    /// asked for it. Call once, right after parsing and before the
    /// experiment runs; without either flag this is a no-op and the
    /// instrumentation stays at its one-relaxed-load disabled cost.
    pub fn init_obs(&self) {
        if self.trace.is_some() {
            faultnet_obs::enable_tracing();
        } else if self.obs_summary {
            faultnet_obs::enable();
        }
    }

    /// Emits whatever observability output was requested: writes the
    /// Chrome-trace file for `--trace FILE` and prints the summary table to
    /// stderr for `--obs-summary`. Call once, after the report has been
    /// printed; without either flag this is a no-op.
    pub fn finish_obs(&self) {
        if self.trace.is_none() && !self.obs_summary {
            return;
        }
        faultnet_obs::flush_thread();
        if let Some(path) = &self.trace {
            if let Err(error) = faultnet_obs::write_trace_file(path) {
                eprintln!("failed to write trace file {path}: {error}");
            }
        }
        if self.obs_summary {
            eprint!("{}", faultnet_obs::summary());
        }
    }

    /// Warns on stderr when `--rescan` was passed to a binary without a
    /// churn loop — there is no per-timestep census to force from scratch.
    /// Mirrors [`ExpArgs::warn_fault_model_ignored`]: silently accepting
    /// the flag would let a user believe the rescan cross-check ran when
    /// nothing rescanned.
    pub fn warn_rescan_ignored(&self, binary: &str) {
        if self.rescan {
            eprintln!(
                "--rescan is ignored by {binary}; only exp_churn walks a \
                 churn schedule with per-timestep censuses"
            );
        }
    }
}

/// Resolves a requested thread count: `0` means "all available cores"
/// (falling back to 1 when the platform cannot report parallelism).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Resolves the `--census-threads` value: explicit counts are kept, `0`
/// means "all available cores" (identical to [`resolve_threads`]; the
/// default of 1 is applied by the parser, not here, so callers resolving a
/// stored 0 still get auto).
pub fn resolve_census_threads(requested: usize) -> usize {
    resolve_threads(requested)
}

/// The shared lookahead rule for the space-form numeric flags
/// (`--threads N`, `--census-threads N`, `--trial-batch N`).
///
/// The token after the flag is consumed as the value unless it is itself a
/// flag (starts with `--`). Three cases:
///
/// * next token parses as a number — `(Some(n), 1)`: value kept, token
///   consumed;
/// * next token is a non-flag that does not parse (`--threads lots`) —
///   `(None, 1)`: warns once on stderr, token consumed so the main loop
///   does not re-report it as an unknown argument;
/// * flag is the final token or followed by another flag — `(None, 0)`:
///   warns once on stderr, nothing swallowed.
///
/// `fallback` names the behaviour kept on failure in the warning, so the
/// space-form message is byte-identical to the `=`-form's
/// `value.parse().unwrap_or_else(warn)` message.
fn take_numeric_value(
    args: &[String],
    i: usize,
    flag: &str,
    fallback: &str,
) -> (Option<usize>, usize) {
    match args.get(i + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => match value.parse() {
            Ok(n) => (Some(n), 1),
            Err(_) => {
                eprintln!("{flag} expects a number; {fallback}");
                (None, 1)
            }
        },
        _ => {
            eprintln!("{flag} expects a number; {fallback}");
            (None, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_effort_auto_threads() {
        let args = ExpArgs::parse(Vec::new());
        assert_eq!(args.effort, Effort::Full);
        assert!(args.threads >= 1);
        assert!(!args.markdown);
    }

    #[test]
    fn explicit_thread_counts_are_kept() {
        assert_eq!(
            ExpArgs::parse(vec!["--threads".into(), "7".into()]).threads,
            7
        );
        assert_eq!(ExpArgs::parse(vec!["--threads=3".into()]).threads, 3);
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        let args = ExpArgs::parse(vec!["--threads".into(), "0".into()]);
        assert!(args.threads >= 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn unknown_and_malformed_arguments_do_not_abort() {
        let args = ExpArgs::parse(vec![
            "--bogus".into(),
            "--quick".into(),
            "--threads".into(),
            "lots".into(),
        ]);
        assert_eq!(args.effort, Effort::Quick);
        assert!(args.threads >= 1);
    }

    #[test]
    fn census_threads_flag_forms() {
        // Absent: sequential census.
        assert_eq!(ExpArgs::parse(Vec::new()).census_threads, 1);
        // Explicit counts in both spellings.
        assert_eq!(
            ExpArgs::parse(vec!["--census-threads".into(), "4".into()]).census_threads,
            4
        );
        assert_eq!(
            ExpArgs::parse(vec!["--census-threads=2".into()]).census_threads,
            2
        );
        // 0 = one worker per core.
        assert!(ExpArgs::parse(vec!["--census-threads".into(), "0".into()]).census_threads >= 1);
        // A valueless flag keeps the default and must not swallow the next
        // flag.
        let args = ExpArgs::parse(vec!["--census-threads".into(), "--markdown".into()]);
        assert_eq!(args.census_threads, 1);
        assert!(args.markdown);
        // Malformed value falls back to the default.
        assert_eq!(
            ExpArgs::parse(vec!["--census-threads=lots".into()]).census_threads,
            1
        );
        // Orthogonal to --threads.
        let args = ExpArgs::parse(vec![
            "--threads".into(),
            "8".into(),
            "--census-threads".into(),
            "2".into(),
        ]);
        assert_eq!(args.threads, 8);
        assert_eq!(args.census_threads, 2);
    }

    #[test]
    fn trial_batch_flag_forms() {
        // Absent: scalar engine.
        assert_eq!(ExpArgs::parse(Vec::new()).trial_batch, 0);
        // Explicit counts in both spellings (clamping to 64 lanes happens
        // in the engine, not the parser — 200 must survive to exercise it).
        assert_eq!(
            ExpArgs::parse(vec!["--trial-batch".into(), "64".into()]).trial_batch,
            64
        );
        assert_eq!(
            ExpArgs::parse(vec!["--trial-batch=7".into()]).trial_batch,
            7
        );
        assert_eq!(
            ExpArgs::parse(vec!["--trial-batch".into(), "200".into()]).trial_batch,
            200
        );
        // A valueless flag keeps the scalar engine and must not swallow the
        // next flag.
        let args = ExpArgs::parse(vec!["--trial-batch".into(), "--markdown".into()]);
        assert_eq!(args.trial_batch, 0);
        assert!(args.markdown);
        // Malformed value falls back to the scalar engine.
        assert_eq!(
            ExpArgs::parse(vec!["--trial-batch=lots".into()]).trial_batch,
            0
        );
        // Orthogonal to the thread knobs.
        let args = ExpArgs::parse(vec![
            "--threads=2".into(),
            "--census-threads=3".into(),
            "--trial-batch=64".into(),
        ]);
        assert_eq!(
            (args.threads, args.census_threads, args.trial_batch),
            (2, 3, 64)
        );
    }

    #[test]
    fn fault_model_flag_forms_and_errors() {
        let args = ExpArgs::parse(vec!["--fault-model".into(), "adversarial-budget".into()]);
        assert_eq!(args.fault_model, Some(FaultModelSpec::AdversarialBudget));
        let args = ExpArgs::parse(vec!["--fault-model=correlated-regions".into()]);
        assert_eq!(args.fault_model, Some(FaultModelSpec::CorrelatedRegions));
        // Unknown names warn and fall back to the default.
        let args = ExpArgs::parse(vec!["--fault-model".into(), "martian-rays".into()]);
        assert_eq!(args.fault_model, None);
        // A valueless flag must not swallow the next flag.
        let args = ExpArgs::parse(vec!["--fault-model".into(), "--markdown".into()]);
        assert_eq!(args.fault_model, None);
        assert!(args.markdown);
        let args = ExpArgs::parse(Vec::new());
        assert_eq!(args.fault_model, None);
    }

    #[test]
    fn rescan_flag_forms() {
        // Absent: the incremental engine.
        assert!(!ExpArgs::parse(Vec::new()).rescan);
        assert!(ExpArgs::parse(vec!["--rescan".into()]).rescan);
        // A boolean flag: it must not swallow its neighbours.
        let args = ExpArgs::parse(vec!["--rescan".into(), "--markdown".into()]);
        assert!(args.rescan);
        assert!(args.markdown);
        // Orthogonal to the other knobs.
        let args = ExpArgs::parse(vec![
            "--quick".into(),
            "--rescan".into(),
            "--threads=2".into(),
        ]);
        assert_eq!(args.effort, Effort::Quick);
        assert!(args.rescan);
        assert_eq!(args.threads, 2);
    }

    #[test]
    fn trace_flag_forms() {
        // Absent: no trace file, no summary — obs stays off.
        let args = ExpArgs::parse(Vec::new());
        assert_eq!(args.trace, None);
        assert!(!args.obs_summary);
        // Both spellings carry the path through.
        assert_eq!(
            ExpArgs::parse(vec!["--trace".into(), "out.json".into()]).trace,
            Some("out.json".into())
        );
        assert_eq!(
            ExpArgs::parse(vec!["--trace=/tmp/t.json".into()]).trace,
            Some("/tmp/t.json".into())
        );
        // A valueless flag keeps tracing off and must not swallow the next
        // flag (same lookahead rule as --fault-model).
        let args = ExpArgs::parse(vec!["--trace".into(), "--markdown".into()]);
        assert_eq!(args.trace, None);
        assert!(args.markdown);
        // An empty `=`-form path keeps tracing off.
        assert_eq!(ExpArgs::parse(vec!["--trace=".into()]).trace, None);
        // Dangling final token keeps the default.
        assert_eq!(ExpArgs::parse(vec!["--trace".into()]).trace, None);
    }

    #[test]
    fn obs_summary_flag_forms() {
        assert!(ExpArgs::parse(vec!["--obs-summary".into()]).obs_summary);
        // A boolean flag: it must not swallow its neighbours, and composes
        // with --trace.
        let args = ExpArgs::parse(vec![
            "--obs-summary".into(),
            "--trace".into(),
            "t.json".into(),
            "--quick".into(),
        ]);
        assert!(args.obs_summary);
        assert_eq!(args.trace, Some("t.json".into()));
        assert_eq!(args.effort, Effort::Quick);
    }

    #[test]
    fn threads_with_missing_value_does_not_swallow_the_next_flag() {
        let args = ExpArgs::parse(vec!["--threads".into(), "--markdown".into()]);
        assert!(
            args.markdown,
            "--markdown must survive a valueless --threads"
        );
        assert!(args.threads >= 1);
        let args = ExpArgs::parse(vec!["--threads".into(), "--quick".into()]);
        assert_eq!(args.effort, Effort::Quick);
    }

    #[test]
    fn numeric_flags_as_the_final_token_keep_their_defaults() {
        // A dangling flag — nothing after it to look at — warns on stderr
        // and keeps the default, exactly like the `=`-form with a malformed
        // value. It must not panic and must not disturb earlier flags.
        let args = ExpArgs::parse(vec!["--quick".into(), "--threads".into()]);
        assert_eq!(args.effort, Effort::Quick);
        assert!(args.threads >= 1, "dangling --threads resolves to auto");

        let args = ExpArgs::parse(vec!["--census-threads".into()]);
        assert_eq!(args.census_threads, 1);

        let args = ExpArgs::parse(vec!["--trial-batch".into()]);
        assert_eq!(args.trial_batch, 0);
    }

    #[test]
    fn malformed_numeric_values_are_consumed_not_reparsed() {
        // `--threads lots` consumes the bad token: it warns once as a bad
        // number and is NOT re-reported as an unknown argument, so the
        // space-form and `=`-form agree token for token. The surrounding
        // flags still parse.
        let args = ExpArgs::parse(vec!["--threads".into(), "lots".into(), "--markdown".into()]);
        assert!(args.threads >= 1);
        assert!(args.markdown);

        let args = ExpArgs::parse(vec![
            "--census-threads".into(),
            "many".into(),
            "--quick".into(),
        ]);
        assert_eq!(args.census_threads, 1);
        assert_eq!(args.effort, Effort::Quick);

        let args = ExpArgs::parse(vec!["--trial-batch".into(), "wide".into()]);
        assert_eq!(args.trial_batch, 0);
    }
}
