//! E6 — the double binary tree: connectivity threshold, exponential local
//! routing, linear oracle routing (Lemma 6, Theorems 7 and 9).
//!
//! Three measurements on `TT_n`:
//!
//! 1. **Lemma 6** — the probability that the two roots are connected, as a
//!    function of `p`, against the exact Galton–Watson recursion; the curve
//!    collapses to 0 below `1/√2 ≈ 0.707` as the depth grows.
//! 2. **Theorem 7** — the conditioned probe count of the local router as a
//!    function of the depth `n`, which grows exponentially (semi-log fit),
//!    together with the probes certified by the Theorem 7 bound.
//! 3. **Theorem 9** — the probe count of the paired-DFS oracle router, which
//!    grows only linearly in `n` (power-law fit with exponent ≈ 1).

use faultnet_analysis::figure::{AsciiFigure, Scale, Series};
use faultnet_analysis::phase::crossing_point;
use faultnet_analysis::regression::{fit_exponential, fit_line};
use faultnet_analysis::stats::Summary;
use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::branching::{
    double_tree_connection_probability, double_tree_critical_probability,
};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::lower_bound::double_tree_certified_probes;
use faultnet_routing::tree::{LeafPenetrationRouter, PairedDfsOracleRouter};
use faultnet_topology::double_tree::DoubleBinaryTree;

use crate::report::{Effort, ExperimentReport};

/// Connection-probability measurement at one `(depth, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectionPoint {
    /// Tree depth.
    pub depth: u32,
    /// Retention probability.
    pub p: f64,
    /// Measured root-to-root connection frequency.
    pub measured: f64,
    /// Exact Galton–Watson recursion value.
    pub exact: f64,
}

/// Measures the root connectivity frequency of `TT_depth` at probability
/// `p`, fanning the instances across `threads` workers. The per-instance
/// connectivity checks are merged in trial order, so the measured frequency
/// is identical for every thread count.
pub fn measure_connection_point(
    depth: u32,
    p: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
) -> ConnectionPoint {
    let tt = DoubleBinaryTree::new(depth);
    let (x, y) = tt.roots();
    let connected = Sweep::over(0..trials).run_parallel(threads.max(1), |&t| {
        let cfg = PercolationConfig::new(p, base_seed.wrapping_add(t as u64));
        faultnet_percolation::bfs::connected(&tt, &cfg.sampler(), x, y)
    });
    let hits = connected.iter().filter(|point| point.value).count();
    ConnectionPoint {
        depth,
        p,
        measured: hits as f64 / trials as f64,
        exact: double_tree_connection_probability(p, depth),
    }
}

/// Local-vs-oracle complexity measurement at one depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeComplexityPoint {
    /// Tree depth.
    pub depth: u32,
    /// Retention probability.
    pub p: f64,
    /// Conditioned mean probes of the local router.
    pub local_mean_probes: f64,
    /// Mean probes of the oracle router over its successes.
    pub oracle_mean_probes: f64,
    /// Success rate of the (mirror-path-only) oracle router under the
    /// conditioning.
    pub oracle_success_rate: f64,
    /// Probes certified by the Theorem 7 bound at failure probability 1/2.
    pub certified_probes: u64,
}

/// Measures the local and oracle routers on `TT_depth` at probability `p`,
/// fanning the conditioned trials across `threads` workers (1 = sequential;
/// the result is identical either way).
pub fn measure_tree_complexity(
    depth: u32,
    p: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> TreeComplexityPoint {
    let tt = DoubleBinaryTree::new(depth);
    let (x, y) = tt.roots();
    let harness = ComplexityHarness::new(tt, PercolationConfig::new(p, base_seed))
        .with_census_threads(census_threads);
    let local = harness.measure_parallel(&LeafPenetrationRouter::new(), x, y, trials, threads);
    let oracle = harness.measure_parallel(&PairedDfsOracleRouter::new(), x, y, trials, threads);
    TreeComplexityPoint {
        depth,
        p,
        local_mean_probes: Summary::from_counts(local.probe_counts().iter().copied()).mean(),
        oracle_mean_probes: Summary::from_counts(oracle.probe_counts().iter().copied()).mean(),
        oracle_success_rate: oracle.success_rate(),
        certified_probes: double_tree_certified_probes(p, depth, 0.5),
    }
}

/// The E6 experiment.
#[derive(Debug, Clone)]
pub struct DoubleTreeExperiment {
    /// Depths for the connectivity scan.
    pub connectivity_depths: Vec<u32>,
    /// Probabilities for the connectivity scan.
    pub connectivity_ps: Vec<f64>,
    /// Depths for the complexity scan.
    pub complexity_depths: Vec<u32>,
    /// Probability for the complexity scan (above `1/√2`).
    pub complexity_p: f64,
    /// Trials per point.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads for the conditioning checks
    /// (1 = sequential; the reported numbers are identical for every
    /// value).
    pub census_threads: usize,
}

impl DoubleTreeExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        DoubleTreeExperiment {
            connectivity_depths: effort.pick(vec![8, 12], vec![10, 14, 18]),
            connectivity_ps: vec![0.6, 0.65, 0.68, 0.71, 0.74, 0.78, 0.85, 0.92],
            // Depth 14 extends the Theorem 7 semi-log fit by two doublings
            // of the leaf count; it assumes the parallel harness.
            complexity_depths: effort.pick(vec![4, 6, 8], vec![4, 6, 8, 10, 12, 14]),
            complexity_p: 0.8,
            trials: effort.pick(20, 80),
            base_seed: 0xFA07,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.double_tree");
        let mut report = ExperimentReport::new(
            "E6: double binary tree — connectivity threshold, local vs oracle routing",
            "Lemma 6 (threshold 1/√2), Theorem 7 (local routing exponential), Theorem 9 (oracle routing linear)",
        );

        // (1) Connectivity scan.
        for (di, &depth) in self.connectivity_depths.iter().enumerate() {
            let mut table =
                Table::new(["p", "measured Pr[x~y]", "exact recursion"]).with_title(format!(
                    "TT_{depth} root connectivity ({} trials/point)",
                    self.trials
                ));
            let mut curve = Vec::new();
            for (pi, &p) in self.connectivity_ps.iter().enumerate() {
                let seed = self
                    .base_seed
                    .wrapping_add((di as u64) << 20)
                    .wrapping_add(pi as u64);
                let point = measure_connection_point(depth, p, self.trials, seed, self.threads);
                table.push_row([
                    format!("{p:.2}"),
                    fmt_float(point.measured),
                    fmt_float(point.exact),
                ]);
                curve.push((p, point.measured));
            }
            report.push_table(table);
            if let Some(p_star) = crossing_point(&curve, 0.5) {
                report.push_note(format!(
                    "depth {depth}: measured connection probability crosses 1/2 at p ≈ {p_star:.3} \
                     (Lemma 6 threshold: 1/√2 ≈ {:.3})",
                    double_tree_critical_probability()
                ));
            }
        }

        // (2)+(3) Complexity scan.
        let mut table = Table::new([
            "depth",
            "local mean probes",
            "certified probes (Thm 7)",
            "oracle mean probes",
            "oracle success",
        ])
        .with_title(format!(
            "TT_n routing complexity at p = {} ({} trials/point)",
            self.complexity_p, self.trials
        ));
        let mut local_curve = Vec::new();
        let mut oracle_curve = Vec::new();
        for (di, &depth) in self.complexity_depths.iter().enumerate() {
            let point = measure_tree_complexity(
                depth,
                self.complexity_p,
                self.trials,
                self.base_seed.wrapping_add(0xC0 + di as u64),
                self.threads,
                self.census_threads,
            );
            table.push_row([
                depth.to_string(),
                fmt_float(point.local_mean_probes),
                point.certified_probes.to_string(),
                fmt_float(point.oracle_mean_probes),
                fmt_float(point.oracle_success_rate),
            ]);
            if point.local_mean_probes.is_finite() {
                local_curve.push((depth as f64, point.local_mean_probes));
            }
            if point.oracle_mean_probes.is_finite() {
                oracle_curve.push((depth as f64, point.oracle_mean_probes));
            }
        }
        report.push_table(table);
        if let Some(fit) = fit_exponential(&local_curve) {
            report.push_note(format!(
                "local router: probes ≈ {:.2}·e^({:.2}·n) (R² = {:.3}); Theorem 7 predicts exponential growth with rate ≥ ln(1/p) = {:.2}",
                fit.amplitude,
                fit.rate,
                fit.r_squared,
                (1.0 / self.complexity_p).ln()
            ));
        }
        if let Some(fit) = fit_line(&oracle_curve) {
            report.push_note(format!(
                "oracle router: probes ≈ {:.2}·n + {:.2} (R² = {:.3}); Theorem 9 predicts linear growth",
                fit.slope, fit.intercept, fit.r_squared
            ));
        }
        let figure =
            AsciiFigure::new("probes vs depth (log y): local explodes, oracle stays linear")
                .with_scales(Scale::Linear, Scale::Log)
                .with_size(60, 16)
                .with_series(Series::new("local", local_curve))
                .with_series(Series::new("oracle", oracle_curve));
        report.push_figure(figure.render());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_matches_exact_recursion() {
        let point = measure_connection_point(10, 0.85, 60, 5, 2);
        assert!(
            (point.measured - point.exact).abs() < 0.2,
            "measured {} exact {}",
            point.measured,
            point.exact
        );
    }

    #[test]
    fn connectivity_vanishes_below_the_threshold() {
        let below = measure_connection_point(14, 0.6, 30, 7, 1);
        let above = measure_connection_point(14, 0.9, 30, 7, 1);
        assert!(below.measured < 0.2);
        assert!(above.measured > 0.5);
    }

    #[test]
    fn local_probes_exceed_oracle_probes() {
        let point = measure_tree_complexity(7, 0.8, 25, 9, 2, 1);
        assert!(point.local_mean_probes.is_finite());
        if point.oracle_mean_probes.is_finite() {
            assert!(point.local_mean_probes > point.oracle_mean_probes);
        }
    }

    #[test]
    fn quick_report_renders_with_fits() {
        let report = DoubleTreeExperiment::quick().run();
        assert!(report.tables().len() >= 3);
        assert_eq!(report.figures().len(), 1);
        assert!(report.notes().iter().any(|n| n.contains("Theorem 9")));
        assert!(report.notes().iter().any(|n| n.contains("Theorem 7")));
    }
}
