//! Binary entry point for the E9 open questions experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::open_questions::OpenQuestionsExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        OpenQuestionsExperiment::quick()
    } else {
        OpenQuestionsExperiment::full()
    };
    println!("{}", experiment.run().render());
}
