//! Binary entry point for the E9 open questions experiment.
//!
//! Flags: `--quick` for the reduced configuration used by tests and benches
//! (the default is the full configuration recorded in docs/EXPERIMENTS.md),
//! `--threads N` to set the worker-thread count (0 or absent = one worker
//! per core; the emitted tables are identical for every value),
//! `--census-threads N` to run each intra-instance component census on `N`
//! workers (absent = sequential census; 0 = one worker per core; the
//! emitted tables are identical for every value), and `--markdown` for
//! Markdown output.

use faultnet_experiments::cli::ExpArgs;
use faultnet_experiments::open_questions::OpenQuestionsExperiment;

fn main() {
    let args = ExpArgs::parse_env();
    args.init_obs();
    args.warn_fault_model_ignored("exp_open_questions");
    args.warn_trial_batch_ignored("exp_open_questions");
    args.warn_rescan_ignored("exp_open_questions");
    let experiment = OpenQuestionsExperiment::with_effort(args.effort)
        .with_threads(args.threads)
        .with_census_threads(args.census_threads);
    args.print(&experiment.run());
    args.finish_obs();
}
