//! Binary entry point for the E8b mesh thresholds experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::mesh_threshold::MeshThresholdExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        MeshThresholdExperiment::quick()
    } else {
        MeshThresholdExperiment::full()
    };
    println!("{}", experiment.run().render());
}
