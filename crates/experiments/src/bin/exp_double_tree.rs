//! Binary entry point for the E6 double tree experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::double_tree::DoubleTreeExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        DoubleTreeExperiment::quick()
    } else {
        DoubleTreeExperiment::full()
    };
    println!("{}", experiment.run().render());
}
