//! Binary entry point for the E4 mesh routing experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::mesh_routing::MeshRoutingExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        MeshRoutingExperiment::quick()
    } else {
        MeshRoutingExperiment::full()
    };
    println!("{}", experiment.run().render());
}
