//! Binary entry point for the E7 G(n,p) experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::gnp::GnpExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        GnpExperiment::quick()
    } else {
        GnpExperiment::full()
    };
    println!("{}", experiment.run().render());
}
