//! Binary entry point for the E13 real-world-substrate fault-model matrix.
//!
//! Runs the full four-model fault matrix (Bernoulli edges/nodes, correlated
//! regions, budgeted adversary) on substrates the paper's structured
//! families exclude: the bundled Zachary karate-club network, a
//! Barabási–Albert scale-free graph, a `k`-ary fat-tree, and a random
//! `d`-regular graph, all loaded or generated through `topology::load` into
//! explicit graphs. Reports per-substrate degree statistics and Molloy–Reed
//! threshold predictions, giant-fraction scans per model, and flood-router
//! probe counts on the canonical pair.
//!
//! Flags: `--quick` for the reduced configuration used by tests and CI
//! (the default is the full configuration recorded in docs/EXPERIMENTS.md),
//! `--threads N` to set the worker-thread count (0 or absent = one worker
//! per core; the emitted tables are identical for every value),
//! `--census-threads N` to run each intra-instance component census on `N`
//! workers (absent = sequential census; 0 = one worker per core; the
//! emitted tables are identical for every value), `--trial-batch N` to pack
//! up to 64 trials per chunk onto the multispin engine for the benign
//! columns (absent or 0 = scalar engine; the adversarial column always runs
//! scalar; the emitted tables are identical for every value),
//! `--fault-model NAME` to restrict the matrix to a single model, and
//! `--markdown` for Markdown output.

use faultnet_experiments::cli::ExpArgs;
use faultnet_experiments::real_world::RealWorldExperiment;

fn main() {
    let args = ExpArgs::parse_env();
    args.init_obs();
    args.warn_rescan_ignored("exp_real_world");
    let experiment = RealWorldExperiment::with_effort(args.effort)
        .with_threads(args.threads)
        .with_census_threads(args.census_threads)
        .with_trial_batch(args.trial_batch)
        .with_fault_model(args.fault_model);
    args.print(&experiment.run());
    args.finish_obs();
}
