//! Binary entry point for the E5 chemical distance experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::chemical_distance::ChemicalDistanceExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        ChemicalDistanceExperiment::quick()
    } else {
        ChemicalDistanceExperiment::full()
    };
    println!("{}", experiment.run().render());
}
