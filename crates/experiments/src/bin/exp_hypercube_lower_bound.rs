//! Binary entry point for the E2 hypercube lower bound experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::hypercube_lower_bound::HypercubeLowerBoundExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        HypercubeLowerBoundExperiment::quick()
    } else {
        HypercubeLowerBoundExperiment::full()
    };
    println!("{}", experiment.run().render());
}
