//! Binary entry point for the E12 dynamic fault-churn experiment.
//!
//! Lowers a static fault model to a fail-stop-with-repair churn schedule
//! and tracks, per timestep, the giant-component fraction and the
//! canonical pair's routability on hypercubes and the mesh — through the
//! incremental (rewindable union-find) census by default, or through a
//! from-scratch census per timestep with `--rescan`. The two engines are
//! bit-identical on every emitted byte; CI `cmp`s them.
//!
//! Flags: `--quick` for the reduced configuration used by tests and CI
//! (the default is the full configuration recorded in docs/EXPERIMENTS.md),
//! `--threads N` to fan trials across `N` workers (0 or absent = one
//! worker per core; the emitted tables are identical for every value),
//! `--census-threads N` to run the `--rescan` path's from-scratch censuses
//! on `N` workers (absent = sequential; 0 = one worker per core; the
//! emitted tables are identical for every value), `--rescan` to force the
//! from-scratch engine, `--fault-model NAME` to churn a different static
//! base model, and `--markdown` for Markdown output. `--trial-batch` is
//! not consumed: each trial walks one evolving instance, so there is no
//! trial fan-out for the multispin engine to pack.

use faultnet_experiments::churn::ChurnExperiment;
use faultnet_experiments::cli::ExpArgs;

fn main() {
    let args = ExpArgs::parse_env();
    args.init_obs();
    args.warn_trial_batch_ignored("exp_churn");
    let experiment = ChurnExperiment::with_effort(args.effort)
        .with_threads(args.threads)
        .with_census_threads(args.census_threads)
        .with_rescan(args.rescan)
        .with_fault_model(args.fault_model);
    args.print(&experiment.run());
    args.finish_obs();
}
