//! Binary entry point for the E1/E3 hypercube transition experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::hypercube_transition::HypercubeTransitionExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        HypercubeTransitionExperiment::quick()
    } else {
        HypercubeTransitionExperiment::full()
    };
    println!("{}", experiment.run().render());
}
