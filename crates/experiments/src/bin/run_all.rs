//! Runs every experiment in sequence and prints the combined report.
//!
//! `cargo run --release -p faultnet-experiments --bin run_all -- [--quick] [--markdown] [--threads N]`
//!
//! * `--quick` uses the reduced configurations (seconds per experiment);
//!   the default is the full configurations recorded in docs/EXPERIMENTS.md.
//! * `--markdown` emits Markdown instead of plain text (used to refresh
//!   docs/EXPERIMENTS.md).
//! * `--threads N` fans conditioned trials and sweep points across `N`
//!   worker threads (0 or absent = one worker per core). The parallel
//!   harness merges results in deterministic order, so the emitted tables
//!   are identical for every thread count.

use faultnet_experiments::cli::ExpArgs;
use faultnet_experiments::{
    ablation::AblationExperiment, chemical_distance::ChemicalDistanceExperiment,
    double_tree::DoubleTreeExperiment, gnp::GnpExperiment,
    hypercube_giant::HypercubeGiantExperiment,
    hypercube_lower_bound::HypercubeLowerBoundExperiment,
    hypercube_transition::HypercubeTransitionExperiment, mesh_routing::MeshRoutingExperiment,
    mesh_threshold::MeshThresholdExperiment, open_questions::OpenQuestionsExperiment,
    ExperimentReport,
};

fn main() {
    let args = ExpArgs::parse_env();
    let (effort, threads) = (args.effort, args.threads);

    let reports: Vec<ExperimentReport> = vec![
        HypercubeTransitionExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        HypercubeLowerBoundExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        MeshRoutingExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        ChemicalDistanceExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        DoubleTreeExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        GnpExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        HypercubeGiantExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        MeshThresholdExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        OpenQuestionsExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        AblationExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
    ];

    for report in &reports {
        args.print(report);
    }
    // Deliberately thread-count-free: all output (stdout and stderr) must
    // be byte-identical across --threads values.
    eprintln!("ran {} experiments ({} mode)", reports.len(), effort);
}
