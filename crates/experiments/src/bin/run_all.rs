//! Runs every experiment in sequence and prints the combined report.
//!
//! `cargo run --release -p faultnet-experiments --bin run_all -- [--quick] [--markdown] [--threads N] [--census-threads N]`
//!
//! * `--quick` uses the reduced configurations (seconds per experiment);
//!   the default is the full configurations recorded in docs/EXPERIMENTS.md.
//! * `--markdown` emits Markdown instead of plain text (used to refresh
//!   docs/EXPERIMENTS.md).
//! * `--threads N` fans conditioned trials and sweep points across `N`
//!   worker threads (0 or absent = one worker per core). The parallel
//!   harness merges results in deterministic order, so the emitted tables
//!   are identical for every thread count.
//! * `--census-threads N` runs each intra-instance component census on `N`
//!   workers (absent = sequential census; 0 = one worker per core). The
//!   parallel census is bit-identical to the sequential one, so this knob
//!   too leaves every emitted byte unchanged.
//! * `--trial-batch N` packs up to 64 trials per chunk onto the multispin
//!   engine in the trial-fan-out experiments (E8a, E8b, E11; absent or 0 =
//!   scalar engine everywhere). The batched engine is bit-identical to the
//!   scalar one, so this knob too leaves every emitted byte unchanged.

use faultnet_experiments::cli::ExpArgs;
use faultnet_experiments::suite::run_all_reports;

fn main() {
    let args = ExpArgs::parse_env();
    args.init_obs();
    args.warn_fault_model_ignored("run_all");
    args.warn_rescan_ignored("run_all");
    let reports = run_all_reports(
        args.effort,
        args.threads,
        args.census_threads,
        args.trial_batch,
    );

    for report in &reports {
        args.print(report);
    }
    // Deliberately thread-count-free: all output (stdout and stderr) must
    // be byte-identical across --threads values.
    eprintln!("ran {} experiments ({} mode)", reports.len(), args.effort);
    args.finish_obs();
}
