//! Runs every experiment in sequence and prints the combined report.
//!
//! `run-all-experiments [--quick] [--markdown]`
//!
//! * `--quick` uses the reduced configurations (seconds per experiment);
//!   the default is the full configurations recorded in EXPERIMENTS.md.
//! * `--markdown` emits Markdown instead of plain text (used to refresh
//!   EXPERIMENTS.md).

use faultnet_experiments::{
    ablation::AblationExperiment, chemical_distance::ChemicalDistanceExperiment,
    double_tree::DoubleTreeExperiment, gnp::GnpExperiment,
    hypercube_giant::HypercubeGiantExperiment,
    hypercube_lower_bound::HypercubeLowerBoundExperiment,
    hypercube_transition::HypercubeTransitionExperiment, mesh_routing::MeshRoutingExperiment,
    mesh_threshold::MeshThresholdExperiment, open_questions::OpenQuestionsExperiment,
    ExperimentReport,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let markdown = std::env::args().any(|a| a == "--markdown");

    let reports: Vec<ExperimentReport> = vec![
        if quick {
            HypercubeTransitionExperiment::quick().run()
        } else {
            HypercubeTransitionExperiment::full().run()
        },
        if quick {
            HypercubeLowerBoundExperiment::quick().run()
        } else {
            HypercubeLowerBoundExperiment::full().run()
        },
        if quick {
            MeshRoutingExperiment::quick().run()
        } else {
            MeshRoutingExperiment::full().run()
        },
        if quick {
            ChemicalDistanceExperiment::quick().run()
        } else {
            ChemicalDistanceExperiment::full().run()
        },
        if quick {
            DoubleTreeExperiment::quick().run()
        } else {
            DoubleTreeExperiment::full().run()
        },
        if quick {
            GnpExperiment::quick().run()
        } else {
            GnpExperiment::full().run()
        },
        if quick {
            HypercubeGiantExperiment::quick().run()
        } else {
            HypercubeGiantExperiment::full().run()
        },
        if quick {
            MeshThresholdExperiment::quick().run()
        } else {
            MeshThresholdExperiment::full().run()
        },
        if quick {
            OpenQuestionsExperiment::quick().run()
        } else {
            OpenQuestionsExperiment::full().run()
        },
        if quick {
            AblationExperiment::quick().run()
        } else {
            AblationExperiment::full().run()
        },
    ];

    for report in &reports {
        if markdown {
            println!("{}", report.render_markdown());
        } else {
            println!("{}", report.render());
        }
    }
    eprintln!(
        "ran {} experiments ({} mode)",
        reports.len(),
        if quick { "quick" } else { "full" }
    );
}
