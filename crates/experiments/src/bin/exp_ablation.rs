//! Binary entry point for the E10 ablation experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::ablation::AblationExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        AblationExperiment::quick()
    } else {
        AblationExperiment::full()
    };
    println!("{}", experiment.run().render());
}
