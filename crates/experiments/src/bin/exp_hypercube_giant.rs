//! Binary entry point for the E8a hypercube giant component experiment.
//!
//! Pass `--quick` for the reduced configuration used by tests and benches;
//! the default is the full configuration recorded in EXPERIMENTS.md.

use faultnet_experiments::hypercube_giant::HypercubeGiantExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        HypercubeGiantExperiment::quick()
    } else {
        HypercubeGiantExperiment::full()
    };
    println!("{}", experiment.run().render());
}
