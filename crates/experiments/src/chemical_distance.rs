//! E5 — chemical distance above the threshold (Lemma 8 / Antal–Pisztora).
//!
//! The mesh routing algorithm of Theorem 4 relies on the chemical distance
//! between connected vertices being at most a constant multiple of their
//! graph distance once `p > p_c`. The paper cites Antal–Pisztora for this;
//! the reproduction measures the stretch `D(x, y) / d(x, y)` directly on
//! tori (no boundary effects) at several probabilities and distances, and
//! reports the mean, the maximum, and the empirical tail.

use faultnet_analysis::histogram::Histogram;
use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::chemical::{
    stretch_sample_for_trial, stretch_samples_over_instances, StretchSample,
};
use faultnet_topology::torus::Torus;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// Stretch statistics at one `(p, distance)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchPoint {
    /// Retention probability.
    pub p: f64,
    /// Graph distance of the measured pair.
    pub distance: u64,
    /// Fraction of instances in which the pair was connected.
    pub connectivity_rate: f64,
    /// Mean stretch over connected instances.
    pub mean_stretch: f64,
    /// Maximum stretch over connected instances.
    pub max_stretch: f64,
    /// Fraction of connected instances with stretch above 2.
    pub tail_above_2: f64,
}

/// Measures the stretch of an axis-aligned pair at the given distance on a
/// 2-dimensional torus, fanning the instances across `threads` workers.
///
/// Each worker runs `percolation::chemical::stretch_sample_for_trial` — the
/// same per-trial recipe (seed derivation + bitset materialisation) the
/// sequential collector uses — and results are merged in trial order, so
/// the summary is identical for every thread count.
pub fn measure_stretch_point(
    p: f64,
    distance: u64,
    trials: u32,
    base_seed: u64,
    threads: usize,
) -> StretchPoint {
    let side = (2 * distance + 2).max(8);
    let torus = Torus::new(2, side);
    let u = torus.vertex_at(&[0, 0]);
    let v = torus.vertex_at(&[distance, 0]);
    debug_assert_eq!(torus.distance(u, v), Some(distance));
    let samples: Vec<StretchSample> = Sweep::over(0..trials)
        .run_parallel(threads.max(1), |&t| {
            stretch_sample_for_trial(&torus, u, v, p, base_seed, t)
        })
        .into_iter()
        .filter_map(|point| point.value)
        .collect();
    let n = samples.len();
    let stretches: Vec<f64> = samples.iter().map(StretchSample::stretch).collect();
    let mean = if n == 0 {
        f64::NAN
    } else {
        stretches.iter().sum::<f64>() / n as f64
    };
    let max = stretches.iter().copied().fold(f64::NAN, f64::max);
    let tail = if n == 0 {
        f64::NAN
    } else {
        stretches.iter().filter(|s| **s > 2.0).count() as f64 / n as f64
    };
    StretchPoint {
        p,
        distance,
        connectivity_rate: n as f64 / trials as f64,
        mean_stretch: mean,
        max_stretch: max,
        tail_above_2: tail,
    }
}

/// The E5 experiment.
#[derive(Debug, Clone)]
pub struct ChemicalDistanceExperiment {
    /// Retention probabilities (above `p_c = 1/2`).
    pub ps: Vec<f64>,
    /// Pair distances.
    pub distances: Vec<u64>,
    /// Trials per point.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads, accepted for CLI uniformity: the
    /// chemical-distance pipeline runs BFS distance passes, not component
    /// censuses, so the knob has nothing to parallelise here and never
    /// changes the numbers.
    pub census_threads: usize,
}

impl ChemicalDistanceExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        ChemicalDistanceExperiment {
            ps: effort.pick(vec![0.6, 0.8], vec![0.55, 0.6, 0.7, 0.8, 0.9, 0.95]),
            // Distance 80 doubles the longest measured pair (torus side
            // 162); it assumes the parallel harness.
            distances: effort.pick(vec![8, 16], vec![10, 20, 40, 60, 80]),
            trials: effort.pick(15, 60),
            base_seed: 0xFA06,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.chemical_distance");
        let mut report = ExperimentReport::new(
            "E5: chemical distance above the threshold",
            "Lemma 8 (Antal–Pisztora) — D(x, y) ≤ ρ·d(x, y) w.h.p. for p > p_c",
        );
        for (pi, &p) in self.ps.iter().enumerate() {
            let mut table = Table::new([
                "distance",
                "connected",
                "mean stretch",
                "max stretch",
                "Pr[stretch > 2]",
            ])
            .with_title(format!("2-d torus, p = {p} ({} trials/point)", self.trials));
            let mut all_stretches = Vec::new();
            for (di, &distance) in self.distances.iter().enumerate() {
                let seed = self
                    .base_seed
                    .wrapping_add((pi as u64) << 16)
                    .wrapping_add(di as u64);
                let point = measure_stretch_point(p, distance, self.trials, seed, self.threads);
                table.push_row([
                    distance.to_string(),
                    fmt_float(point.connectivity_rate),
                    fmt_float(point.mean_stretch),
                    fmt_float(point.max_stretch),
                    fmt_float(point.tail_above_2),
                ]);
                if point.mean_stretch.is_finite() {
                    all_stretches.push(point.mean_stretch);
                }
            }
            report.push_table(table);
            if !all_stretches.is_empty() {
                let worst = all_stretches.iter().copied().fold(f64::NAN, f64::max);
                report.push_note(format!(
                    "p = {p}: mean stretch stays bounded (worst mean over distances ≈ {worst:.2}), \
                     consistent with a distance-independent ρ"
                ));
            }
        }
        // A stretch histogram at the lowest probability and largest distance
        // (the hardest case): the Antal–Pisztora statement is about the tail.
        if let (Some(&p), Some(&distance)) = (self.ps.first(), self.distances.last()) {
            let side = (2 * distance + 2).max(8);
            let torus = Torus::new(2, side);
            let u = torus.vertex_at(&[0, 0]);
            let v = torus.vertex_at(&[distance, 0]);
            let samples =
                stretch_samples_over_instances(&torus, u, v, p, self.trials, self.base_seed ^ 0x77);
            if !samples.is_empty() {
                let hist = Histogram::from_values(samples.iter().map(StretchSample::stretch), 8);
                report.push_figure(format!(
                    "stretch distribution at p = {p}, distance {distance}\n{}",
                    hist.render(40)
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_is_small_far_above_threshold() {
        let point = measure_stretch_point(0.9, 12, 15, 3, 2);
        assert!(point.connectivity_rate > 0.8);
        assert!(point.mean_stretch >= 1.0);
        assert!(
            point.mean_stretch < 1.5,
            "mean stretch {}",
            point.mean_stretch
        );
    }

    #[test]
    fn stretch_grows_as_p_approaches_the_threshold() {
        let far = measure_stretch_point(0.95, 10, 20, 4, 1);
        let near = measure_stretch_point(0.6, 10, 20, 4, 1);
        assert!(near.mean_stretch >= far.mean_stretch - 0.05);
    }

    #[test]
    fn quick_report_renders() {
        let report = ChemicalDistanceExperiment::quick().run();
        assert_eq!(report.tables().len(), 2);
        assert!(!report.figures().is_empty());
        assert!(report.render().contains("stretch"));
    }
}
