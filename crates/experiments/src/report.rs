//! Shared experiment-report plumbing.

use std::fmt;

use faultnet_analysis::table::Table;

/// How much work an experiment should do.
///
/// `Quick` keeps every experiment in the seconds range so the integration
/// tests and Criterion benches stay fast; `Full` is what the `exp-*` binaries
/// run to produce the numbers recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sizes and few trials (seconds).
    Quick,
    /// The sizes and trial counts used for EXPERIMENTS.md (minutes).
    Full,
}

impl Effort {
    /// Picks between a quick and a full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

impl fmt::Display for Effort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effort::Quick => write!(f, "quick"),
            Effort::Full => write!(f, "full"),
        }
    }
}

/// The rendered outcome of one experiment: tables, ASCII figures, and notes
/// (fitted exponents, estimated thresholds, conclusions).
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    name: String,
    paper_reference: String,
    tables: Vec<Table>,
    figures: Vec<String>,
    notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report for the experiment `name`, citing the paper
    /// result it reproduces.
    pub fn new(name: impl Into<String>, paper_reference: impl Into<String>) -> Self {
        ExperimentReport {
            name: name.into(),
            paper_reference: paper_reference.into(),
            tables: Vec::new(),
            figures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The paper result (theorem/lemma/section) this experiment reproduces.
    pub fn paper_reference(&self) -> &str {
        &self.paper_reference
    }

    /// Adds a result table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a rendered ASCII figure.
    pub fn push_figure(&mut self, figure: String) {
        self.figures.push(figure);
    }

    /// Adds a free-form note (fitted exponent, estimated threshold, verdict).
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The result tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The rendered figures.
    pub fn figures(&self) -> &[String] {
        &self.figures
    }

    /// The notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders the whole report as terminal-friendly text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.name));
        out.push_str(&format!("reproduces: {}\n\n", self.paper_reference));
        for table in &self.tables {
            out.push_str(&table.to_text());
            out.push('\n');
        }
        for figure in &self.figures {
            out.push_str(figure);
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for note in &self.notes {
                out.push_str(&format!("  - {note}\n"));
            }
        }
        out
    }

    /// Renders the report as Markdown (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.name));
        out.push_str(&format!("*Reproduces:* {}\n\n", self.paper_reference));
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        for figure in &self.figures {
            out.push_str("```text\n");
            out.push_str(figure);
            out.push_str("```\n\n");
        }
        for note in &self.notes {
            out.push_str(&format!("- {note}\n"));
        }
        out
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_pick_and_display() {
        assert_eq!(Effort::Quick.pick(1, 2), 1);
        assert_eq!(Effort::Full.pick(1, 2), 2);
        assert_eq!(Effort::Quick.to_string(), "quick");
        assert_eq!(Effort::Full.to_string(), "full");
    }

    #[test]
    fn report_accumulates_and_renders() {
        let mut report = ExperimentReport::new("E1 demo", "Theorem 3");
        let mut table = Table::new(["a", "b"]);
        table.push_row(["1", "2"]);
        report.push_table(table);
        report.push_figure("fig\n".to_string());
        report.push_note("slope = 2.0");
        assert_eq!(report.name(), "E1 demo");
        assert_eq!(report.paper_reference(), "Theorem 3");
        assert_eq!(report.tables().len(), 1);
        assert_eq!(report.figures().len(), 1);
        assert_eq!(report.notes().len(), 1);
        let text = report.render();
        assert!(text.contains("=== E1 demo ==="));
        assert!(text.contains("slope = 2.0"));
        assert_eq!(report.to_string(), text);
        let md = report.render_markdown();
        assert!(md.contains("### E1 demo"));
        assert!(md.contains("```text"));
    }
}
