//! E4 — linear-time routing on the supercritical mesh (Theorem 4).
//!
//! Theorem 4: on the `d`-dimensional mesh with any fixed `p > p_c^d`, the
//! landmark router finds a path between vertices at distance `n` with
//! expected `O(n)` probes. The experiment measures the conditioned mean probe
//! count as a function of the distance for several `p` (from just above the
//! threshold up to nearly fault-free), fits the scaling exponent, and
//! contrasts the landmark router with the flooding baseline whose cost grows
//! with the *area* rather than the distance.

use faultnet_analysis::figure::{AsciiFigure, Scale, Series};
use faultnet_analysis::regression::fit_power_law;
use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::bfs::FloodRouter;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::mesh::MeshLandmarkRouter;
use faultnet_topology::mesh::Mesh;

use crate::report::{Effort, ExperimentReport};

/// One measured point: probes at a given distance on a given mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshPoint {
    /// Mesh dimension `d`.
    pub dimension: u32,
    /// Retention probability.
    pub p: f64,
    /// Distance between the routed pair.
    pub distance: u64,
    /// Fraction of instances in which the pair was connected.
    pub connectivity_rate: f64,
    /// Conditioned mean probes of the landmark router.
    pub landmark_mean_probes: f64,
    /// Conditioned mean probes of the flooding baseline (`NaN` if skipped).
    pub flood_mean_probes: f64,
}

/// Builds the mesh and pair used for a distance-`distance` measurement: a
/// `d`-dimensional mesh with a small margin around a straight pair. Shared
/// with the fault-model experiment so every model is measured on the exact
/// grid geometry of E4.
pub(crate) fn mesh_and_pair(
    dimension: u32,
    distance: u64,
) -> (
    Mesh,
    faultnet_topology::VertexId,
    faultnet_topology::VertexId,
) {
    let margin = 2u64;
    let side = distance + 2 * margin + 1;
    let mesh = Mesh::new(dimension, side);
    let mut a = vec![margin; dimension as usize];
    let mut b = vec![margin; dimension as usize];
    b[0] = margin + distance;
    a.iter_mut().skip(1).for_each(|c| *c = side / 2);
    b.iter_mut().skip(1).for_each(|c| *c = side / 2);
    let u = mesh.vertex_at(&a);
    let v = mesh.vertex_at(&b);
    (mesh, u, v)
}

/// Measures one `(d, p, distance)` point, fanning the conditioned trials
/// across `threads` workers (1 = sequential; the result is identical either
/// way).
// One over clippy's limit: the grid point is five genuine parameters and
// the two orthogonal parallelism knobs; bundling the knobs into a struct
// for this one function would make it the odd sibling of every other
// measure_* signature in the crate.
#[allow(clippy::too_many_arguments)]
pub fn measure_mesh_point(
    dimension: u32,
    p: f64,
    distance: u64,
    trials: u32,
    include_flood_baseline: bool,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> MeshPoint {
    let (mesh, u, v) = mesh_and_pair(dimension, distance);
    let harness = ComplexityHarness::new(mesh, PercolationConfig::new(p, base_seed))
        .with_census_threads(census_threads);
    let landmark = harness.measure_parallel(&MeshLandmarkRouter::new(), u, v, trials, threads);
    let landmark_summary = Summary::from_counts(landmark.probe_counts().iter().copied());
    let flood_mean = if include_flood_baseline {
        let flood = harness.measure_parallel(&FloodRouter::new(), u, v, trials, threads);
        Summary::from_counts(flood.probe_counts().iter().copied()).mean()
    } else {
        f64::NAN
    };
    MeshPoint {
        dimension,
        p,
        distance,
        connectivity_rate: landmark.connectivity_rate(),
        landmark_mean_probes: landmark_summary.mean(),
        flood_mean_probes: flood_mean,
    }
}

/// The E4 experiment.
#[derive(Debug, Clone)]
pub struct MeshRoutingExperiment {
    /// Mesh dimensions to evaluate (the paper's statement is for every `d`).
    pub dimensions: Vec<u32>,
    /// Retention probabilities (all above the corresponding `p_c^d`).
    pub ps: Vec<f64>,
    /// Pair distances to sweep.
    pub distances: Vec<u64>,
    /// Trials per point.
    pub trials: u32,
    /// Whether to also measure the flooding baseline (quadratic cost).
    pub include_flood_baseline: bool,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads for the conditioned trials (1 = sequential; the
    /// reported numbers are identical for every value).
    pub threads: usize,
    /// Intra-census worker threads for the conditioning checks
    /// (1 = sequential; the reported numbers are identical for every
    /// value).
    pub census_threads: usize,
}

impl MeshRoutingExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        MeshRoutingExperiment {
            dimensions: effort.pick(vec![2], vec![2, 3]),
            ps: effort.pick(vec![0.6, 0.8], vec![0.55, 0.6, 0.7, 0.8, 0.9]),
            // The distance-160 point extends the Theorem 4 linear fit; it
            // assumes the parallel harness.
            distances: effort.pick(vec![8, 16, 32], vec![10, 20, 40, 80, 120, 160]),
            trials: effort.pick(10, 40),
            include_flood_baseline: true,
            base_seed: 0xFA04,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.mesh_routing");
        let mut report = ExperimentReport::new(
            "E4: mesh routing above the percolation threshold",
            "Theorem 4 — expected routing complexity O(n) for any p > p_c^d",
        );
        for &d in &self.dimensions {
            let mut figure = AsciiFigure::new(format!(
                "mean probes vs distance on the {d}-dimensional mesh (landmark router)"
            ))
            .with_scales(Scale::Log, Scale::Log)
            .with_size(60, 16);
            for (pi, &p) in self.ps.iter().enumerate() {
                let mut table = Table::new([
                    "distance",
                    "connected",
                    "landmark mean probes",
                    "probes / distance",
                    "flood mean probes",
                ])
                .with_title(format!(
                    "mesh d = {d}, p = {p} ({} trials/point)",
                    self.trials
                ));
                let mut curve = Vec::new();
                for (di, &distance) in self.distances.iter().enumerate() {
                    let point = measure_mesh_point(
                        d,
                        p,
                        distance,
                        self.trials,
                        self.include_flood_baseline,
                        self.base_seed
                            .wrapping_add((pi as u64) << 24)
                            .wrapping_add((di as u64) << 8)
                            .wrapping_add(d as u64),
                        self.threads,
                        self.census_threads,
                    );
                    table.push_row([
                        distance.to_string(),
                        fmt_float(point.connectivity_rate),
                        fmt_float(point.landmark_mean_probes),
                        fmt_float(point.landmark_mean_probes / distance as f64),
                        fmt_float(point.flood_mean_probes),
                    ]);
                    if point.landmark_mean_probes.is_finite() {
                        curve.push((distance as f64, point.landmark_mean_probes));
                    }
                }
                report.push_table(table);
                if let Some(fit) = fit_power_law(&curve) {
                    report.push_note(format!(
                        "d = {d}, p = {p}: probes ≈ {:.2}·n^{:.2} (R² = {:.3}); Theorem 4 predicts exponent 1",
                        fit.amplitude, fit.exponent, fit.r_squared
                    ));
                }
                figure = figure.with_series(Series::new(format!("{p}"), curve));
            }
            report.push_figure(figure.render());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_scale_roughly_linearly_with_distance() {
        let near = measure_mesh_point(2, 0.8, 8, 10, false, 1, 2, 1);
        let far = measure_mesh_point(2, 0.8, 32, 10, false, 1, 2, 1);
        assert!(near.connectivity_rate > 0.5);
        assert!(far.connectivity_rate > 0.5);
        // 4x the distance should cost well under 16x the probes (quadratic
        // growth would give 16x).
        assert!(
            far.landmark_mean_probes < near.landmark_mean_probes * 10.0,
            "near {} far {}",
            near.landmark_mean_probes,
            far.landmark_mean_probes
        );
    }

    #[test]
    fn landmark_router_beats_flooding() {
        let point = measure_mesh_point(2, 0.7, 16, 8, true, 5, 1, 2);
        assert!(point.flood_mean_probes.is_finite());
        assert!(point.landmark_mean_probes < point.flood_mean_probes);
    }

    #[test]
    fn quick_report_contains_fits() {
        let report = MeshRoutingExperiment::quick().run();
        assert!(report.tables().len() >= 2);
        assert_eq!(report.figures().len(), 1);
        assert!(report.notes().iter().any(|n| n.contains("exponent 1")));
    }

    #[test]
    fn mesh_and_pair_have_requested_distance() {
        let (mesh, u, v) = mesh_and_pair(3, 12);
        assert_eq!(faultnet_topology::Topology::distance(&mesh, u, v), Some(12));
    }
}
