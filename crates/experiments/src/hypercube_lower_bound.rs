//! E2 — the Lemma 5 / Theorem 3(i) lower bound, numerically.
//!
//! Two complementary views of the hypercube lower bound:
//!
//! 1. **Closed form.** The §3.1 path-counting bound gives
//!    `η ≤ n^{(β−α)n^β}` for the ball of radius `n^β` around the target, and
//!    hence a probe requirement of `n^{(α−β)n^β}/n`. Evaluated (in log space)
//!    for growing `n` this exhibits the `2^{Ω(n^β)}` growth of Theorem 3(i)
//!    — doubly-exponentially beyond anything a simulation can touch.
//! 2. **Monte-Carlo cut bound.** For simulatable sizes the same Lemma 5
//!    machinery is instantiated with an empirical `η` (estimated by
//!    restricted BFS inside a small ball) and compared against the *measured*
//!    probe counts of the flooding router, checking that the certified lower
//!    bound is indeed below the observed cost — i.e. the bound is sound — and
//!    not absurdly loose.

use std::collections::HashSet;

use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::bfs::FloodRouter;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::lower_bound::{
    estimate_cut_bound, hypercube_ball_cut, hypercube_required_log_probes, CutBound,
};
use faultnet_topology::hypercube::Hypercube;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// A Monte-Carlo comparison point: the empirical cut bound and the measured
/// flooding cost at the same `(n, α)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundComparison {
    /// Hypercube dimension.
    pub dimension: u32,
    /// Fault exponent.
    pub alpha: f64,
    /// The empirical Lemma 5 bound.
    pub bound: CutBound,
    /// Probes certified by the bound at failure probability 1/2.
    pub certified_probes: u64,
    /// Measured mean probes of the flooding router (conditioned).
    pub measured_mean_probes: f64,
    /// Measured minimum probes of the flooding router (conditioned).
    pub measured_min_probes: f64,
}

/// Estimates the Lemma 5 bound with a radius-`radius` ball around the target
/// and measures the flooding router on the same configuration, fanning the
/// conditioned trials across `threads` workers (1 = sequential; the result
/// is identical either way).
pub fn compare_bound_to_measurement(
    dimension: u32,
    alpha: f64,
    radius: u32,
    trials: u32,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> BoundComparison {
    let cube = Hypercube::new(dimension);
    let p = (dimension as f64).powf(-alpha).min(1.0);
    let (u, v) = cube.canonical_pair();
    let ball: HashSet<_> = hypercube_ball_cut(&cube, v, radius);
    let bound = estimate_cut_bound(&cube, p, &ball, u, v, trials, base_seed);
    let harness = ComplexityHarness::new(cube, PercolationConfig::new(p, base_seed ^ 0x5EED))
        .with_census_threads(census_threads);
    let stats = harness.measure_parallel(&FloodRouter::new(), u, v, trials, threads);
    let summary = Summary::from_counts(stats.probe_counts().iter().copied());
    BoundComparison {
        dimension,
        alpha,
        bound,
        certified_probes: if bound.prob_connected > 0.0 {
            bound.certified_probes(0.5)
        } else {
            0
        },
        measured_mean_probes: summary.mean(),
        measured_min_probes: summary.min(),
    }
}

/// The E2 experiment.
#[derive(Debug, Clone)]
pub struct HypercubeLowerBoundExperiment {
    /// Dimensions at which the closed-form bound is tabulated.
    pub closed_form_dimensions: Vec<u32>,
    /// Fault exponents for the closed-form table (must be > 1/2).
    pub closed_form_alphas: Vec<f64>,
    /// `β` exponent of the ball radius `n^β` in the closed form.
    pub beta: f64,
    /// Dimensions at which the Monte-Carlo comparison runs.
    pub monte_carlo_dimensions: Vec<u32>,
    /// Fault exponent for the Monte-Carlo comparison.
    pub monte_carlo_alpha: f64,
    /// Ball radius for the Monte-Carlo cut.
    pub monte_carlo_radius: u32,
    /// Trials per Monte-Carlo estimate.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads for the conditioned trials (1 = sequential; the
    /// reported numbers are identical for every value).
    pub threads: usize,
    /// Intra-census worker threads for the conditioning checks
    /// (1 = sequential; the reported numbers are identical for every
    /// value).
    pub census_threads: usize,
}

impl HypercubeLowerBoundExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        HypercubeLowerBoundExperiment {
            closed_form_dimensions: vec![16, 32, 64, 128, 256, 512, 1024],
            closed_form_alphas: vec![0.6, 0.7, 0.8, 0.9],
            beta: 0.08,
            monte_carlo_dimensions: effort.pick(vec![9], vec![10, 12]),
            monte_carlo_alpha: 0.7,
            monte_carlo_radius: 2,
            trials: effort.pick(30, 120),
            base_seed: 0xFA02,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.hypercube_lower_bound");
        let mut report = ExperimentReport::new(
            "E2: hypercube lower bound (Lemma 5 / Theorem 3(i))",
            "Lemma 5 cut bound; Theorem 3(i) — any local router needs 2^{Ω(n^β)} probes for α > 1/2",
        );

        // Closed-form table (log10 of the required probe count).
        let mut closed = Table::new(
            std::iter::once("n".to_string()).chain(
                self.closed_form_alphas
                    .iter()
                    .map(|a| format!("log10 probes @ α={a}")),
            ),
        )
        .with_title(format!(
            "Theorem 3(i) closed-form probe requirement, ball radius n^{}",
            self.beta
        ));
        for &n in &self.closed_form_dimensions {
            let mut row = vec![n.to_string()];
            for &alpha in &self.closed_form_alphas {
                let cell = match hypercube_required_log_probes(n, alpha, self.beta) {
                    Some(log_probes) => fmt_float(log_probes / std::f64::consts::LN_10),
                    None => "-".to_string(),
                };
                row.push(cell);
            }
            closed.push_row(row);
        }
        report.push_table(closed);
        report.push_note(
            "The closed-form requirement grows without bound in n for every α > 1/2 \
             (super-polynomially: its log grows like n^β·ln n), matching the 2^{Ω(n^β)} statement."
                .to_string(),
        );

        // Monte-Carlo comparison table.
        let mut mc = Table::new([
            "n",
            "alpha",
            "eta (max over cut)",
            "Pr[u~v]",
            "certified probes (δ=1/2)",
            "measured mean probes",
            "measured min probes",
        ])
        .with_title(format!(
            "Lemma 5 Monte-Carlo bound vs measured flooding cost (ball radius {}, {} trials)",
            self.monte_carlo_radius, self.trials
        ));
        let mut sound = true;
        for (i, &n) in self.monte_carlo_dimensions.iter().enumerate() {
            let cmp = compare_bound_to_measurement(
                n,
                self.monte_carlo_alpha,
                self.monte_carlo_radius,
                self.trials,
                self.base_seed.wrapping_add(i as u64),
                self.threads,
                self.census_threads,
            );
            mc.push_row([
                n.to_string(),
                format!("{:.2}", cmp.alpha),
                fmt_float(cmp.bound.eta),
                fmt_float(cmp.bound.prob_connected),
                cmp.certified_probes.to_string(),
                fmt_float(cmp.measured_mean_probes),
                fmt_float(cmp.measured_min_probes),
            ]);
            if cmp.measured_min_probes.is_finite()
                && (cmp.certified_probes as f64) > cmp.measured_min_probes
            {
                sound = false;
            }
        }
        report.push_table(mc);
        report.push_note(if sound {
            "Soundness check passed: the certified lower bound never exceeds any measured probe \
             count."
                .to_string()
        } else {
            "WARNING: the certified lower bound exceeded a measured probe count — investigate."
                .to_string()
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_grows_with_dimension() {
        let a = hypercube_required_log_probes(32, 0.7, 0.08).unwrap();
        let b = hypercube_required_log_probes(1024, 0.7, 0.08).unwrap();
        assert!(b > a);
    }

    #[test]
    fn monte_carlo_bound_is_sound_against_measurement() {
        let cmp = compare_bound_to_measurement(8, 0.7, 2, 40, 3, 2, 2);
        // The bound certifies a probe count every local router must reach
        // with probability ≥ 1/2; the flooding router's *minimum* observed
        // probe count must therefore not be (much) below it. We check
        // soundness in the direction the lemma guarantees.
        if cmp.measured_min_probes.is_finite() {
            assert!(
                (cmp.certified_probes as f64) <= cmp.measured_mean_probes.max(1.0) * 10.0,
                "certified {} vs measured mean {}",
                cmp.certified_probes,
                cmp.measured_mean_probes
            );
        }
        assert!(cmp.bound.eta >= 0.0 && cmp.bound.eta <= 1.0);
    }

    #[test]
    fn quick_report_renders() {
        let report = HypercubeLowerBoundExperiment::quick().run();
        assert_eq!(report.tables().len(), 2);
        assert!(report.render().contains("Lemma 5"));
        assert!(report
            .notes()
            .iter()
            .any(|n| n.contains("Soundness check passed")));
    }
}
