//! Reproducible experiments for every result of *Routing Complexity of
//! Faulty Networks*.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems rather
//! than benchmark tables. Each experiment in this crate therefore regenerates
//! the finite-size table/figure that exhibits one theorem's predicted shape
//! (see docs/EXPERIMENTS.md for the experiment guide — per-binary theorem
//! mapping, grids, runtimes, and how to read the emitted tables):
//!
//! | Experiment | Paper result | Module |
//! |---|---|---|
//! | E1/E3 | Theorem 3 — hypercube routing phase transition at `α = 1/2` | [`hypercube_transition`] |
//! | E2 | Theorem 3(i)/Lemma 5 — cut lower bound vs. measured cost | [`hypercube_lower_bound`] |
//! | E4 | Theorem 4 — `O(n)` mesh routing above `p_c` | [`mesh_routing`] |
//! | E5 | Lemma 8 — chemical distance is linear above `p_c` | [`chemical_distance`] |
//! | E6 | Lemma 6 + Theorems 7, 9 — double tree local vs. oracle | [`double_tree`] |
//! | E7 | Theorems 10, 11 — `G(n,p)` local `n²` vs. oracle `n^{3/2}` | [`gnp`] |
//! | E8 | background thresholds (hypercube giant/connectivity, mesh `p_c`) | [`hypercube_giant`], [`mesh_threshold`] |
//! | E9 | §6 open questions — constant-degree families | [`open_questions`] |
//! | E10 | design-choice ablations | [`ablation`] |
//! | E11 | fault-model scenarios — E4/E8a grids under node, correlated, and adversarial faults | [`fault_models`] |
//! | E12 | dynamic fault churn — giant fraction and routability over time, incremental census | [`churn`] |
//! | E13 | fault-model matrix on real-world/scale-free substrates (loaded + generated) | [`real_world`] |
//!
//! Each module exposes an experiment struct with `quick()` (seconds; used by
//! tests and Criterion benches) and `full()` (minutes; used by the `exp-*`
//! binaries) constructors, a `with_threads` builder wired to the binaries'
//! `--threads` flag (trials fan across scoped worker threads; the reported
//! numbers are bit-identical for every thread count), and a `run()` method
//! producing an [`report::ExperimentReport`]. The trial-fan-out experiments
//! (E8a, E8b, E11, E13) additionally accept the `--trial-batch` knob via a
//! `with_trial_batch` builder: their benign columns run on the multispin
//! [`faultnet_percolation::TrialBatch`] engine, again with bit-identical
//! output (see [`exec::TrialExec`]). Shared flag parsing lives in [`cli`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chemical_distance;
pub mod churn;
pub mod cli;
pub mod double_tree;
pub mod exec;
pub mod fault_models;
pub mod gnp;
pub mod hypercube_giant;
pub mod hypercube_lower_bound;
pub mod hypercube_transition;
pub mod mesh_routing;
pub mod mesh_threshold;
pub mod open_questions;
pub mod real_world;
pub mod report;
pub mod suite;

pub use exec::TrialExec;
pub use report::{Effort, ExperimentReport};
