//! Execution knobs shared by the trial-fan-out measurement functions.
//!
//! The trial-fan-out experiments (E8a giant scans, E8b threshold
//! bisections, the E11 matrix) thread three orthogonal wall-clock levers
//! through every measurement: per-trial fan-out (`--threads`),
//! intra-census fan-out (`--census-threads`), and the trial-batched
//! multispin engine (`--trial-batch`). [`TrialExec`] bundles them so
//! measurement functions take one knobs value instead of a growing tail of
//! `usize` parameters — and so a new lever lands in one place instead of
//! every signature.
//!
//! All three knobs share the same contract: **they never change a reported
//! number**. The parallel harness folds in trial order, the parallel
//! census is bit-identical to the sequential one, and the batched engine
//! is bit-identical to the scalar one (each proven by its own equivalence
//! suite), so a `TrialExec` is purely a wall-clock configuration.

/// Wall-clock execution knobs for a trial-fan-out measurement.
///
/// # Examples
///
/// ```
/// use faultnet_experiments::exec::TrialExec;
///
/// let exec = TrialExec::sequential().with_threads(4).with_trial_batch(64);
/// assert_eq!(exec.threads, 4);
/// assert_eq!(exec.census_threads, 1);
/// assert!(exec.batched());
/// assert!(!TrialExec::default().batched());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialExec {
    /// Per-trial (or per-chunk, when batched) worker threads; at least 1.
    pub threads: usize,
    /// Intra-census worker threads; 1 = sequential census.
    pub census_threads: usize,
    /// Trial-batch lane request: 0 = scalar engine, `N >= 1` = multispin
    /// engine with `min(N, 64)` lanes per word.
    pub trial_batch: usize,
}

impl TrialExec {
    /// Fully sequential scalar execution: one thread, sequential census,
    /// batching off. The baseline every other configuration must
    /// bit-identically reproduce.
    pub fn sequential() -> Self {
        TrialExec {
            threads: 1,
            census_threads: 1,
            trial_batch: 0,
        }
    }

    /// Sets the per-trial worker count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (clamped to at least 1).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Sets the trial-batch lane request (0 keeps the scalar engine).
    #[must_use]
    pub fn with_trial_batch(mut self, trial_batch: usize) -> Self {
        self.trial_batch = trial_batch;
        self
    }

    /// Whether the trial-batched engine was requested.
    pub fn batched(&self) -> bool {
        self.trial_batch > 0
    }
}

impl Default for TrialExec {
    fn default() -> Self {
        TrialExec::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_the_default() {
        assert_eq!(TrialExec::default(), TrialExec::sequential());
        assert_eq!(TrialExec::sequential().threads, 1);
        assert_eq!(TrialExec::sequential().census_threads, 1);
        assert!(!TrialExec::sequential().batched());
    }

    #[test]
    fn builders_clamp_threads_but_not_the_batch() {
        let exec = TrialExec::sequential()
            .with_threads(0)
            .with_census_threads(0)
            .with_trial_batch(0);
        assert_eq!(exec.threads, 1);
        assert_eq!(exec.census_threads, 1);
        // 0 is meaningful for the batch knob: it means "scalar engine".
        assert_eq!(exec.trial_batch, 0);
        assert!(TrialExec::sequential().with_trial_batch(200).batched());
    }
}
