//! E9 — exploration of the §6 open questions on constant-degree families.
//!
//! The paper asks (Open Questions, §6) whether there is a constant-degree,
//! logarithmic-diameter family whose percolation threshold and routing
//! threshold coincide, and names de Bruijn graphs, shuffle-exchange graphs
//! and butterflies as candidates. This experiment does not (and cannot)
//! answer the question; it *explores* it: for each candidate family it sweeps
//! the retention probability and reports
//!
//! * the giant-component fraction (locating the percolation threshold), and
//! * the conditioned cost and success rate of flooding between the family's
//!   canonical far pair, normalised by the edge count (locating where routing
//!   becomes cheap relative to probing the whole graph).
//!
//! A visible gap between the two curves is evidence of hypercube-like
//! behaviour; curves moving together is evidence of mesh-like behaviour.

use faultnet_analysis::stats::Summary;
use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::components::ComponentCensus;
use faultnet_percolation::sample::BitsetSample;
use faultnet_percolation::PercolationConfig;
use faultnet_routing::bfs::FloodRouter;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_topology::butterfly::Butterfly;
use faultnet_topology::cycle_matching::{CycleWithMatching, MatchingKind};
use faultnet_topology::de_bruijn::DeBruijn;
use faultnet_topology::shuffle_exchange::ShuffleExchange;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// Per-family sweep output: the rendered table plus the `(p, giant fraction)`
/// and `(p, normalised flood cost)` curves used for threshold comparison.
type FamilyMeasurement = (Table, Vec<(f64, f64)>, Vec<(f64, f64)>);

/// Measurements for one family at one retention probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyPoint {
    /// Retention probability.
    pub p: f64,
    /// Mean giant-component fraction.
    pub giant_fraction: f64,
    /// Fraction of instances in which the canonical pair was connected.
    pub pair_connectivity: f64,
    /// Conditioned mean flooding probes divided by the number of edges
    /// (1.0 means "probed essentially the whole graph").
    pub normalized_flood_cost: f64,
}

/// Measures one family at one probability, fanning both the component
/// censuses and the conditioned routing trials across `threads` workers,
/// and each individual census across `census_threads` workers
/// (1 = sequential; the result is identical for every value of both).
///
/// Every candidate family has a closed-form `Topology::edge_index`, so the
/// per-instance [`BitsetSample`] always materialises as a true bitset
/// (single-bit `is_open` reads) — the census loop never pays the
/// `FrozenSample` hash path. A test below pins this down.
pub fn measure_family_point<T: Topology + Clone + Sync>(
    graph: &T,
    p: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> FamilyPoint {
    let giant_total: f64 = Sweep::over(0..trials)
        .run_parallel(threads.max(1), |&t| {
            let cfg = PercolationConfig::new(p, base_seed.wrapping_add(t as u64));
            let sample = BitsetSample::from_config(graph, &cfg);
            ComponentCensus::compute_parallel(graph, &sample, census_threads).giant_fraction()
        })
        .into_iter()
        .map(|point| point.value)
        .sum();
    let harness =
        ComplexityHarness::new(graph.clone(), PercolationConfig::new(p, base_seed ^ 0xABCD));
    let (u, v) = graph.canonical_pair();
    let stats = harness.measure_parallel(&FloodRouter::new(), u, v, trials, threads);
    let mean_probes = Summary::from_counts(stats.probe_counts().iter().copied()).mean();
    FamilyPoint {
        p,
        giant_fraction: giant_total / trials as f64,
        pair_connectivity: stats.connectivity_rate(),
        normalized_flood_cost: mean_probes / graph.num_edges() as f64,
    }
}

/// The E9 experiment.
#[derive(Debug, Clone)]
pub struct OpenQuestionsExperiment {
    /// Retention probabilities to sweep.
    pub ps: Vec<f64>,
    /// Size exponent for the binary-string families (2^k vertices).
    pub string_length: u32,
    /// Butterfly dimension.
    pub butterfly_dimension: u32,
    /// Cycle-plus-matching order.
    pub cycle_order: u64,
    /// Trials per point.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads (1 = sequential census; the reported
    /// numbers are identical for every value).
    pub census_threads: usize,
}

impl OpenQuestionsExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        OpenQuestionsExperiment {
            ps: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            // Length-12 strings (4096 vertices) double the full-effort
            // family size; tractable with the parallel harness.
            string_length: effort.pick(8, 12),
            butterfly_dimension: effort.pick(5, 7),
            cycle_order: effort.pick(256, 2048),
            trials: effort.pick(6, 30),
            base_seed: 0xFA09,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    fn family_table<T: Topology + Clone + Sync>(
        &self,
        graph: &T,
        seed_offset: u64,
    ) -> FamilyMeasurement {
        let mut table = Table::new([
            "p",
            "giant fraction",
            "pair connectivity",
            "flood probes / |E|",
        ])
        .with_title(format!(
            "{} ({} vertices, {} edges, {} trials/point)",
            graph.name(),
            graph.num_vertices(),
            graph.num_edges(),
            self.trials
        ));
        let mut giant_curve = Vec::new();
        let mut cost_curve = Vec::new();
        for (pi, &p) in self.ps.iter().enumerate() {
            let point = measure_family_point(
                graph,
                p,
                self.trials,
                self.base_seed
                    .wrapping_add(seed_offset)
                    .wrapping_add(pi as u64 * 131),
                self.threads,
                self.census_threads,
            );
            table.push_row([
                format!("{p:.2}"),
                fmt_float(point.giant_fraction),
                fmt_float(point.pair_connectivity),
                fmt_float(point.normalized_flood_cost),
            ]);
            giant_curve.push((p, point.giant_fraction));
            cost_curve.push((p, point.normalized_flood_cost));
        }
        (table, giant_curve, cost_curve)
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.open_questions");
        let mut report = ExperimentReport::new(
            "E9: open-question exploration on constant-degree families",
            "§6 Open Questions — do the percolation and routing thresholds coincide for constant-degree, log-diameter families?",
        );
        let de_bruijn = DeBruijn::new(self.string_length);
        let shuffle = ShuffleExchange::new(self.string_length);
        let butterfly = Butterfly::new(self.butterfly_dimension);
        let cycle = CycleWithMatching::new(
            self.cycle_order,
            MatchingKind::Random {
                seed: self.base_seed,
            },
        );

        let mut note_curves = Vec::new();
        {
            let (table, giant, cost) = self.family_table(&de_bruijn, 1);
            report.push_table(table);
            note_curves.push(("de Bruijn", giant, cost));
        }
        {
            let (table, giant, cost) = self.family_table(&shuffle, 2);
            report.push_table(table);
            note_curves.push(("shuffle-exchange", giant, cost));
        }
        {
            let (table, giant, cost) = self.family_table(&butterfly, 3);
            report.push_table(table);
            note_curves.push(("butterfly", giant, cost));
        }
        {
            let (table, giant, cost) = self.family_table(&cycle, 4);
            report.push_table(table);
            note_curves.push(("cycle+matching", giant, cost));
        }
        for (name, giant, _cost) in &note_curves {
            if let Some(p_perc) = faultnet_analysis::phase::crossing_point(giant, 0.25) {
                report.push_note(format!(
                    "{name}: giant fraction crosses 0.25 at p ≈ {p_perc:.2}"
                ));
            }
        }
        report.push_note(
            "Flooding cost normalised by |E| close to the giant fraction curve indicates that a \
             local router still has to probe a constant fraction of the graph well above the \
             percolation threshold — the open question asks whether a smarter local router can \
             avoid this on these families."
                .to_string(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_point_fields_are_sane() {
        let g = DeBruijn::new(7);
        let point = measure_family_point(&g, 0.7, 5, 1, 2, 2);
        assert!((0.0..=1.0).contains(&point.giant_fraction));
        assert!((0.0..=1.0).contains(&point.pair_connectivity));
        assert!(point.normalized_flood_cost.is_nan() || point.normalized_flood_cost <= 1.0);
    }

    #[test]
    fn giant_fraction_grows_with_p() {
        let g = ShuffleExchange::new(8);
        let low = measure_family_point(&g, 0.3, 5, 2, 1, 1);
        let high = measure_family_point(&g, 0.9, 5, 2, 1, 2);
        assert!(high.giant_fraction > low.giant_fraction);
    }

    #[test]
    fn e9_families_materialise_on_the_bitset_backend() {
        // The experiment's dense path builds one BitsetSample per instance;
        // all four candidate families must take the arithmetic-index path.
        use faultnet_percolation::sample::SampleBackend;
        let quick = OpenQuestionsExperiment::quick();
        let cfg = PercolationConfig::new(0.5, quick.base_seed);
        let de_bruijn = DeBruijn::new(quick.string_length);
        let shuffle = ShuffleExchange::new(quick.string_length);
        let butterfly = Butterfly::new(quick.butterfly_dimension);
        let cycle = CycleWithMatching::new(
            quick.cycle_order,
            MatchingKind::Random {
                seed: quick.base_seed,
            },
        );
        assert_eq!(
            BitsetSample::from_config(&de_bruijn, &cfg).backend(),
            SampleBackend::Bitset
        );
        assert_eq!(
            BitsetSample::from_config(&shuffle, &cfg).backend(),
            SampleBackend::Bitset
        );
        assert_eq!(
            BitsetSample::from_config(&butterfly, &cfg).backend(),
            SampleBackend::Bitset
        );
        assert_eq!(
            BitsetSample::from_config(&cycle, &cfg).backend(),
            SampleBackend::Bitset
        );
    }

    #[test]
    fn quick_report_covers_all_four_families() {
        let report = OpenQuestionsExperiment::quick().run();
        assert_eq!(report.tables().len(), 4);
        let text = report.render();
        assert!(text.contains("de_bruijn"));
        assert!(text.contains("shuffle_exchange"));
        assert!(text.contains("butterfly"));
        assert!(text.contains("cycle_matching"));
    }
}
