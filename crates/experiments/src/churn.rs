//! E12 — dynamic fault churn: giant fraction and pair routability *over
//! time* under fail-stop-with-repair dynamics, tracked by the incremental
//! (rewindable union–find) census.
//!
//! The paper samples faults once and routes; this experiment lets the fault
//! set evolve. Each trial materialises a fault instance at `t = 0`, lowers
//! the model to a deterministic churn schedule
//! ([`faultnet_faultmodel::dynamic::Churned`]: per step every open edge
//! fails w.p. `fail_rate`, every closed edge is repaired w.p.
//! `repair_rate`, with heterogeneous per-edge failure rates), and walks the
//! schedule with an [`IncrementalCensus`], recording at every timestep the
//! giant-component fraction and whether the canonical source–target pair is
//! routable (same component — the paper's Definition 2 conditioning event).
//!
//! With `fail_rate/repair_rate` chosen so the stationary open fraction
//! `repair/(fail + repair)` equals the initial `p`, the rows exhibit a
//! supercritical network that *stays* supercritical under churn: the giant
//! fraction fluctuates around its static value instead of drifting, which
//! is exactly the regime in which the paper's routing guarantees keep
//! holding per-timestep.
//!
//! The `--rescan` flag forces a from-scratch [`ComponentCensus`] at every
//! timestep instead of the incremental engine. Both paths are bit-identical
//! on every reported number (the incremental census equals a full rescan on
//! every accessor — the tentpole equivalence, proven zoo-wide in
//! `crates/percolation/tests/churn_equivalence.rs`), so CI `cmp`s the two
//! outputs byte for byte.

use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_faultmodel::dynamic::{Churned, DynamicFaultModel};
use faultnet_faultmodel::FaultModelSpec;
use faultnet_percolation::components::ComponentCensus;
use faultnet_percolation::dynamic::{EventKind, IncrementalCensus};
use faultnet_percolation::sample::FrozenSample;
use faultnet_percolation::{EdgeStates, PercolationConfig};
use faultnet_topology::hypercube::Hypercube;
use faultnet_topology::mesh::Mesh;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// One trial's time series: per timestep `0..=timesteps`, the number of
/// events applied that step (0 at `t = 0`), the giant fraction, and whether
/// the canonical pair was in one component.
type TrialSeries = Vec<(usize, f64, bool)>;

/// Walks one trial's churn schedule and records the series, through the
/// incremental census or (with `rescan`) a from-scratch census per step.
///
/// The two engines agree bit-identically on every recorded number — that is
/// the equivalence contract the churn test suite proves — so `rescan` is a
/// wall-clock/cross-check knob, never a result knob.
fn trial_series(
    graph: &(dyn Topology + Sync),
    dynamic: &(dyn DynamicFaultModel + Sync),
    p: f64,
    seed: u64,
    timesteps: usize,
    rescan: bool,
    census_threads: usize,
) -> TrialSeries {
    let pair = graph.canonical_pair();
    let config = PercolationConfig::new(p, seed);
    let initial = dynamic.initial(graph, config, Some(pair));
    let schedule = dynamic.schedule(graph, config, Some(pair), &initial, timesteps);
    let mut series = Vec::with_capacity(timesteps + 1);
    if rescan {
        let mut open = FrozenSample::from_open_edges(
            graph.edges().into_iter().filter(|e| initial.is_open(*e)),
        );
        let census = ComponentCensus::compute_parallel(graph, &open, census_threads);
        series.push((
            0,
            census.giant_fraction(),
            census.same_component(pair.0, pair.1),
        ));
        for t in 0..timesteps {
            let events = schedule.timestep(t);
            for event in events {
                match event.kind {
                    EventKind::Fail => {
                        open.close_edge(event.edge);
                    }
                    EventKind::Repair => {
                        open.open_edge(event.edge);
                    }
                }
            }
            let census = ComponentCensus::compute_parallel(graph, &open, census_threads);
            series.push((
                events.len(),
                census.giant_fraction(),
                census.same_component(pair.0, pair.1),
            ));
        }
    } else {
        let mut census = IncrementalCensus::new(graph, &initial);
        series.push((
            0,
            census.giant_fraction(),
            census.same_component(pair.0, pair.1),
        ));
        for t in 0..timesteps {
            let events = schedule.timestep(t);
            census.step(events);
            series.push((
                events.len(),
                census.giant_fraction(),
                census.same_component(pair.0, pair.1),
            ));
        }
    }
    series
}

/// The E12 experiment.
#[derive(Debug, Clone)]
pub struct ChurnExperiment {
    /// Hypercube dimensions to churn (one table each).
    pub cube_dimensions: Vec<u32>,
    /// Side of the 2-d mesh to churn.
    pub mesh_side: u64,
    /// Initial retention probability of the base model.
    pub p: f64,
    /// Per-step failure rate of open edges.
    pub fail_rate: f64,
    /// Per-step repair rate of closed edges.
    pub repair_rate: f64,
    /// Per-edge failure-rate spread in `[0, 1]` (0 = homogeneous).
    pub heterogeneity: f64,
    /// Number of churn timesteps per trial.
    pub timesteps: usize,
    /// Independent trials per family (schedules and instances both vary).
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Static base model lowered to churn (the `--fault-model` knob;
    /// Bernoulli edge faults by default).
    pub model: FaultModelSpec,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads, used by the `--rescan` path's
    /// from-scratch censuses (the incremental engine is sequential by
    /// nature; the reported numbers are identical for every value).
    pub census_threads: usize,
    /// Force a from-scratch census per timestep instead of the incremental
    /// engine (the `--rescan` knob; the reported numbers are identical
    /// either way — that equivalence is the point).
    pub rescan: bool,
}

impl ChurnExperiment {
    /// Configuration at the requested effort level.
    ///
    /// Rates satisfy `repair/(fail + repair) = p`, so the stationary open
    /// fraction of the churn equals the initial retention probability and
    /// the network stays in its static regime throughout.
    pub fn with_effort(effort: Effort) -> Self {
        ChurnExperiment {
            cube_dimensions: effort.pick(vec![8], vec![14, 16, 18]),
            mesh_side: effort.pick(12, 96),
            p: 0.6,
            fail_rate: 0.04,
            repair_rate: 0.06,
            heterogeneity: 0.5,
            timesteps: effort.pick(6, 20),
            trials: effort.pick(4, 6),
            base_seed: 0xC4A2,
            model: FaultModelSpec::BernoulliEdges,
            threads: 1,
            census_threads: 1,
            rescan: false,
        }
    }

    /// Quick configuration (seconds) for tests and CI.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Forces from-scratch censuses per timestep (the `--rescan` knob).
    #[must_use]
    pub fn with_rescan(mut self, rescan: bool) -> Self {
        self.rescan = rescan;
        self
    }

    /// Churns a different static base model (the `--fault-model` knob);
    /// `None` keeps Bernoulli edge faults.
    #[must_use]
    pub fn with_fault_model(mut self, model: Option<FaultModelSpec>) -> Self {
        if let Some(spec) = model {
            self.model = spec;
        }
        self
    }

    /// Measures one family and renders its per-timestep table.
    fn family_table(&self, graph: &(dyn Topology + Sync), family_seed: u64) -> Table {
        let base = self.model.build();
        let dynamic = Churned::new(&base, self.fail_rate, self.repair_rate)
            .with_heterogeneity(self.heterogeneity);
        let per_trial = Sweep::over(0..self.trials).run_parallel(self.threads.max(1), |&t| {
            trial_series(
                graph,
                &dynamic,
                self.p,
                self.base_seed
                    .wrapping_add(family_seed << 32)
                    .wrapping_add(t as u64),
                self.timesteps,
                self.rescan,
                self.census_threads,
            )
        });
        // Fold in trial order: the f64 sums (and therefore every rendered
        // digit) are identical for every thread count and both engines.
        let mut events_total = vec![0usize; self.timesteps + 1];
        let mut giant_total = vec![0.0f64; self.timesteps + 1];
        let mut routable_count = vec![0u32; self.timesteps + 1];
        for point in &per_trial {
            for (t, &(events, giant, routable)) in point.value.iter().enumerate() {
                events_total[t] += events;
                giant_total[t] += giant;
                routable_count[t] += u32::from(routable);
            }
        }
        let mut table = Table::new(["t", "mean events", "giant fraction", "Pr[pair routable]"])
            .with_title(format!(
                "{} under churn: p = {}, fail = {}, repair = {}, het = {} ({} trials)",
                graph.name(),
                self.p,
                self.fail_rate,
                self.repair_rate,
                self.heterogeneity,
                self.trials
            ));
        for t in 0..=self.timesteps {
            table.push_row([
                t.to_string(),
                fmt_float(events_total[t] as f64 / self.trials as f64),
                fmt_float(giant_total[t] / self.trials as f64),
                fmt_float(routable_count[t] as f64 / self.trials as f64),
            ]);
        }
        table
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.churn");
        let mut report = ExperimentReport::new(
            "E12: dynamic fault churn",
            "beyond the paper — fail/repair dynamics over the §1.2/Theorem 4 substrates, \
             tracked by incremental connectivity",
        );
        let mut families: Vec<Box<dyn Topology + Sync>> = Vec::new();
        for &n in &self.cube_dimensions {
            families.push(Box::new(Hypercube::new(n)));
        }
        families.push(Box::new(Mesh::new(2, self.mesh_side)));
        for (fi, family) in families.iter().enumerate() {
            report.push_table(self.family_table(&**family, fi as u64));
        }
        report.push_note(format!(
            "Stationary open fraction repair/(fail+repair) = {} equals the initial p, so \
             the churn holds each family in its static regime: the giant fraction and the \
             canonical pair's routability fluctuate around their t = 0 values instead of \
             drifting.",
            fmt_float(self.repair_rate / (self.fail_rate + self.repair_rate))
        ));
        report.push_note(
            "Per-timestep numbers come from the incremental census (rewindable union-find: \
             repairs are unions, failures rewind the undo log and replay the surviving \
             suffix), proven bit-identical to a from-scratch census at every step by the \
             zoo-wide differential suite."
                .to_string(),
        );
        let base = self.model.build();
        if faultnet_faultmodel::FaultModel::name(&base) != self.model.cli_name() {
            report.push_note(format!("{} = {}", self.model, base.name()));
        }
        if self.model != FaultModelSpec::BernoulliEdges {
            report.push_note(format!(
                "Base model under churn: {} (selected with --fault-model).",
                self.model
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_one_table_per_family() {
        let experiment = ChurnExperiment::quick();
        let report = experiment.run();
        assert_eq!(
            report.tables().len(),
            experiment.cube_dimensions.len() + 1,
            "one table per cube dimension plus the mesh"
        );
        for table in report.tables() {
            assert_eq!(table.num_rows(), experiment.timesteps + 1);
            assert_eq!(table.num_columns(), 4);
        }
        assert!(report.render().contains("under churn"));
        assert!(report.render_markdown().contains("### E12"));
    }

    #[test]
    fn rescan_engine_is_byte_identical_to_incremental() {
        // The end-to-end half of the tentpole equivalence: forcing a
        // from-scratch census at every timestep must not move a byte of the
        // rendered report.
        let incremental = ChurnExperiment::quick().run().render();
        let rescan = ChurnExperiment::quick().with_rescan(true).run().render();
        assert_eq!(incremental, rescan);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let baseline = ChurnExperiment::quick().run().render();
        for threads in [2, 4] {
            let threaded = ChurnExperiment::quick()
                .with_threads(threads)
                .run()
                .render();
            assert_eq!(baseline, threaded, "threads = {threads}");
        }
        let census_threaded = ChurnExperiment::quick()
            .with_rescan(true)
            .with_census_threads(2)
            .with_threads(2)
            .run()
            .render();
        assert_eq!(baseline, census_threaded);
    }

    #[test]
    fn supercritical_families_stay_supercritical_under_churn() {
        // Stationary-matched rates: the giant fraction in the last timestep
        // should still be macroscopic for the quick hypercube.
        let report = ChurnExperiment::quick().run();
        let cube_table = &report.tables()[0];
        let last_row = cube_table.rows().last().unwrap();
        let giant: f64 = last_row[2].parse().unwrap();
        assert!(giant > 0.5, "giant fraction collapsed under churn: {giant}");
    }

    #[test]
    fn churned_base_model_selection_is_reported() {
        let report = ChurnExperiment::quick()
            .with_fault_model(Some(FaultModelSpec::BernoulliNodes))
            .run();
        assert!(report.notes().iter().any(|n| n.contains("bernoulli-nodes")));
    }
}
