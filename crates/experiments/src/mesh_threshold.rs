//! E8b — mesh critical probabilities.
//!
//! Theorem 4 applies for every `p > p_c^d`; the paper quotes `p_c² = 1/2` and
//! `p_c^d = (1 + o(1))/2d` (§1.2). This experiment estimates the thresholds
//! by bisection on the giant-fraction curve of tori (wrap-around meshes, to
//! suppress boundary effects) of growing side length.

use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::threshold::{
    estimate_threshold_batched, estimate_threshold_with_census_threads,
    giant_fraction_sweep_batched, giant_fraction_sweep_with_census_threads,
};
use faultnet_topology::torus::Torus;

use crate::report::{Effort, ExperimentReport};

/// The E8b experiment.
#[derive(Debug, Clone)]
pub struct MeshThresholdExperiment {
    /// `(dimension, side lengths)` pairs to evaluate.
    pub cases: Vec<(u32, Vec<u64>)>,
    /// Giant-fraction level whose crossing defines the finite-size threshold.
    pub target_fraction: f64,
    /// Trials per probability evaluation.
    pub trials: u32,
    /// Bisection tolerance on `p`.
    pub tolerance: f64,
    /// Probabilities for the reported giant-fraction sweep.
    pub sweep_ps: Vec<f64>,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads: the per-(dimension, side) bisections run in parallel
    /// (each bisection is inherently sequential in `p`). 1 = sequential; the
    /// reported numbers are identical for every value.
    pub threads: usize,
    /// Intra-census worker threads: each giant-fraction evaluation inside a
    /// bisection runs its census on this many workers — the only
    /// parallelism available *within* one bisection. 1 = sequential; the
    /// reported numbers are identical for every value.
    pub census_threads: usize,
    /// Trial-batch lane request: each probability evaluation inside a
    /// bisection samples its trials on the multispin engine. 0 = scalar;
    /// the reported numbers are identical for every value.
    pub trial_batch: usize,
}

impl MeshThresholdExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        MeshThresholdExperiment {
            // The side-96 / side-20 points shrink the finite-size drift of
            // the p_c estimates; they assume the parallel bisections.
            cases: effort.pick(
                vec![(2, vec![16, 24]), (3, vec![6, 8])],
                vec![(2, vec![24, 40, 64, 96]), (3, vec![8, 12, 16, 20])],
            ),
            target_fraction: 0.25,
            trials: effort.pick(4, 20),
            tolerance: effort.pick(0.02, 0.005),
            sweep_ps: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            base_seed: 0xFA05,
            threads: 1,
            census_threads: 1,
            trial_batch: 0,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Sets the trial-batch lane request (the `--trial-batch` knob;
    /// 0 keeps the scalar engine).
    #[must_use]
    pub fn with_trial_batch(mut self, trial_batch: usize) -> Self {
        self.trial_batch = trial_batch;
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.mesh_threshold");
        let mut report = ExperimentReport::new(
            "E8b: mesh percolation thresholds",
            "§1.2 background — p_c² = 1/2, p_c^d decreasing in d (applicability boundary of Theorem 4)",
        );
        let mut estimates =
            Table::new(["d", "side", "estimated p_c", "reference"]).with_title(format!(
                "threshold estimates (giant fraction crossing {}, tolerance {})",
                self.target_fraction, self.tolerance
            ));
        // Flatten the (dimension, side) grid so every bisection can run on
        // its own worker; the sweep preserves order, so the table rows come
        // out identical to a sequential run.
        let mut bisection_points = Vec::new();
        for (case_index, (d, sides)) in self.cases.iter().enumerate() {
            for (side_index, &side) in sides.iter().enumerate() {
                bisection_points.push((case_index, *d, side_index, side));
            }
        }
        let estimated = Sweep::over(bisection_points).run_parallel(
            self.threads.max(1),
            |&(case_index, d, side_index, side)| {
                let torus = Torus::new(d, side);
                let seed = self
                    .base_seed
                    .wrapping_add((case_index as u64) << 20)
                    .wrapping_add(side_index as u64);
                if self.trial_batch > 0 {
                    estimate_threshold_batched(
                        &torus,
                        self.target_fraction,
                        self.trials,
                        self.tolerance,
                        seed,
                        self.census_threads,
                        self.trial_batch,
                    )
                } else {
                    estimate_threshold_with_census_threads(
                        &torus,
                        self.target_fraction,
                        self.trials,
                        self.tolerance,
                        seed,
                        self.census_threads,
                    )
                }
            },
        );
        for point in &estimated {
            let (_, d, _, side) = point.parameter;
            let reference = match d {
                2 => "0.5 (exact)".to_string(),
                3 => "\u{2248} 0.2488".to_string(),
                other => format!(
                    "\u{2248} {:.3} (1/2d heuristic)",
                    1.0 / (2.0 * other as f64)
                ),
            };
            estimates.push_row([
                d.to_string(),
                side.to_string(),
                fmt_float(point.value),
                reference,
            ]);
        }
        for (case_index, (d, sides)) in self.cases.iter().enumerate() {
            // A giant-fraction sweep for the largest side of this dimension.
            let &largest = sides.last().expect("at least one side per case");
            let torus = Torus::new(*d, largest);
            let sweep_seed = self.base_seed.wrapping_add(777 + case_index as u64);
            let sweep = if self.trial_batch > 0 {
                giant_fraction_sweep_batched(
                    &torus,
                    &self.sweep_ps,
                    self.trials,
                    sweep_seed,
                    self.census_threads,
                    self.trial_batch,
                )
            } else {
                giant_fraction_sweep_with_census_threads(
                    &torus,
                    &self.sweep_ps,
                    self.trials,
                    sweep_seed,
                    self.census_threads,
                )
            };
            let mut sweep_table = Table::new(["p", "giant fraction"]).with_title(format!(
                "giant fraction sweep, d = {d}, torus side {largest}"
            ));
            for point in sweep {
                sweep_table.push_row([fmt_float(point.p), fmt_float(point.giant_fraction)]);
            }
            report.push_table(sweep_table);
        }
        report.push_table(estimates);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultnet_percolation::threshold::estimate_threshold;

    #[test]
    fn two_dimensional_estimate_is_near_one_half() {
        let torus = Torus::new(2, 20);
        let est = estimate_threshold(&torus, 0.25, 4, 0.02, 9);
        assert!((0.35..0.65).contains(&est), "estimate {est}");
    }

    #[test]
    fn three_dimensional_threshold_is_below_two_dimensional() {
        let t2 = estimate_threshold(&Torus::new(2, 16), 0.25, 4, 0.02, 5);
        let t3 = estimate_threshold(&Torus::new(3, 7), 0.25, 4, 0.02, 5);
        assert!(t3 < t2, "t3 {t3} should be below t2 {t2}");
    }

    #[test]
    fn quick_report_renders() {
        let report = MeshThresholdExperiment::quick().run();
        assert!(report.tables().len() >= 3);
        assert!(report.render().contains("p_c"));
    }

    #[test]
    fn quick_report_is_byte_identical_with_batching() {
        // Every probability evaluation inside every bisection must land on
        // the same bits whether its trials are scalar or lane-packed —
        // otherwise the bisection could take a *different path* through p.
        let scalar = MeshThresholdExperiment::quick().run().render();
        let batched = MeshThresholdExperiment::quick()
            .with_trial_batch(64)
            .with_threads(2)
            .run()
            .render();
        assert_eq!(scalar, batched);
    }
}
