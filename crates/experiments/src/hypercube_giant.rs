//! E8a — background structure of `H_{n,p}`: the giant-component threshold at
//! `p ≈ 1/n` (Ajtai–Komlós–Szemerédi) and the connectivity threshold at
//! `p = 1/2` (Erdős–Spencer), both quoted in §1.2/§1.3 of the paper and used
//! to frame where routing is even meaningful.

use faultnet_analysis::phase::crossing_point;
use faultnet_analysis::sweep::Sweep;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::components::ComponentCensus;
use faultnet_percolation::sample::BitsetSample;
use faultnet_percolation::trial_batch::{clamp_lanes, TrialBatch};
use faultnet_percolation::PercolationConfig;
use faultnet_topology::hypercube::Hypercube;
use faultnet_topology::Topology;

use crate::exec::TrialExec;
use crate::report::{Effort, ExperimentReport};

/// Giant fraction and connectivity probability of `H_{n,p}` at one `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypercubePoint {
    /// Retention probability.
    pub p: f64,
    /// Mean fraction of vertices in the largest component.
    pub giant_fraction: f64,
    /// Fraction of instances in which the whole cube was connected.
    pub connectivity: f64,
}

/// Measures giant fraction and connectivity of `H_{n,p}` over `trials`
/// instances under the execution knobs in `exec`: instances fan across
/// `exec.threads` workers, each instance's census across
/// `exec.census_threads` workers, and `exec.trial_batch > 0` packs up to 64
/// instances per chunk into one [`TrialBatch`] word array.
///
/// On the scalar path each worker materialises its instance as a
/// [`BitsetSample`] (single bit read per edge in the census); on the batched
/// path lane `l` of the chunk starting at trial `t0` uses seed
/// `base_seed + t0 + l` — exactly the scalar trial's seed — and the census
/// reads the lane through a [`faultnet_percolation::LaneView`]. Per-instance
/// results are summed in trial order either way, so the means are identical
/// for every `threads`, `census_threads`, *and* `trial_batch` value: the
/// parallel census is bit-identical to the sequential one and the batched
/// substrate is a pure relayout of the scalar samples. The knobs compose —
/// per-trial fan-out soaks up many small instances, intra-census fan-out
/// soaks up few huge ones (the n ≥ 16 grids this experiment exists for), and
/// batching amortises the edge sampling across lanes.
pub fn measure_hypercube_point(
    dimension: u32,
    p: f64,
    trials: u32,
    base_seed: u64,
    exec: TrialExec,
) -> HypercubePoint {
    measure_hypercube_point_with_model(
        &faultnet_faultmodel::BernoulliEdges::new(),
        dimension,
        p,
        trials,
        base_seed,
        exec,
    )
}

/// Like [`measure_hypercube_point`], but drawing each instance from an
/// arbitrary [`faultnet_faultmodel::FaultModel`] (the Bernoulli-edge model
/// reproduces the original numbers exactly; the fault-model property tests
/// assert the materialised bitsets are bit-identical).
///
/// Dead vertices under node-fault models still count toward the giant
/// *fraction*'s denominator (they are isolated components), so a node model
/// at survival `p` caps the giant fraction near `p` — exactly the effect
/// `exp_fault_models` tabulates side by side.
///
/// A `trial_batch` request silently falls back to the scalar loop for
/// models that are not [`faultnet_faultmodel::FaultModel::lane_batchable`]
/// (after a one-shot stderr note) — the results are identical either way.
pub fn measure_hypercube_point_with_model<M: faultnet_faultmodel::FaultModel + Sync + ?Sized>(
    model: &M,
    dimension: u32,
    p: f64,
    trials: u32,
    base_seed: u64,
    exec: TrialExec,
) -> HypercubePoint {
    let _span = faultnet_obs::span("hypercube_giant.point");
    let cube = Hypercube::new(dimension);
    measure_giant_point_with_model(model, &cube, p, trials, base_seed, exec)
}

/// The family-generic giant/connectivity engine behind
/// [`measure_hypercube_point_with_model`]: measures any [`Topology`] under
/// any fault model with the same seed discipline, batched/scalar
/// equivalence, and trial-order summation. `exp_real_world` (E13) drives it
/// over loaded and generated [`faultnet_topology::explicit::ExplicitGraph`]
/// substrates, whose adjacency-slot `edge_index` makes them batchable like
/// the closed-form families. The returned [`HypercubePoint`] is the
/// substrate-agnostic point record despite its historical name.
pub fn measure_giant_point_with_model<M, T>(
    model: &M,
    graph: &T,
    p: f64,
    trials: u32,
    base_seed: u64,
    exec: TrialExec,
) -> HypercubePoint
where
    M: faultnet_faultmodel::FaultModel + Sync + ?Sized,
    T: Topology + Sync,
{
    let cube = graph;
    // No routed pair in a giant scan; the FaultModel contract defines an
    // absent pair as the canonical pair, so hoisting the placement for the
    // canonical pair (once, instead of inside every trial — the adversary's
    // greedy BFS loop is pure in `(graph, pair, budget)`) measures exactly
    // the `None` configuration. Both halves of that equality are
    // property-tested in the faultmodel crate.
    let pair = cube.canonical_pair();
    let placement = model.pair_placement(cube, pair);
    let mut batched = exec.batched();
    if batched && !model.lane_batchable() {
        faultnet_faultmodel::warn_scalar_fallback(&model.name());
        batched = false;
    }
    let (giant_total, connected_count) = if batched && TrialBatch::supported(cube) {
        // Multispin path: each chunk samples up to 64 instances into one
        // transposed word array, then walks the lanes in trial order. Lane
        // `l` of the chunk at `t0` uses seed `base_seed + t0 + l` — the
        // scalar trial's seed — so the census over each LaneView is
        // bit-identical to the census over the scalar BitsetSample.
        let lanes_per_chunk = clamp_lanes(exec.trial_batch);
        let starts: Vec<u32> = (0..trials).step_by(lanes_per_chunk).collect();
        let per_chunk = Sweep::over(starts).run_parallel(exec.threads.max(1), |&t0| {
            let lanes = lanes_per_chunk.min((trials - t0) as usize);
            let instances: Vec<_> = (0..lanes)
                .map(|l| {
                    let seed = base_seed.wrapping_add(t0 as u64).wrapping_add(l as u64);
                    let cfg = PercolationConfig::new(p, seed);
                    model.instance_from_placement(&placement, cube, cfg, pair)
                })
                .collect();
            let batch = TrialBatch::from_lane_states(cube, &instances);
            (0..lanes)
                .map(|l| {
                    let census = ComponentCensus::compute_parallel(
                        cube,
                        &batch.lane_view(l),
                        exec.census_threads,
                    );
                    (census.giant_fraction(), census.num_components() == 1)
                })
                .collect::<Vec<_>>()
        });
        let mut giant_total = 0.0;
        let mut connected_count = 0u32;
        for chunk in per_chunk {
            for (giant, connected) in chunk.value {
                giant_total += giant;
                connected_count += u32::from(connected);
            }
        }
        (giant_total, connected_count)
    } else {
        let per_trial = Sweep::over(0..trials).run_parallel(exec.threads.max(1), |&t| {
            let cfg = PercolationConfig::new(p, base_seed.wrapping_add(t as u64));
            let instance = model.instance_from_placement(&placement, cube, cfg, pair);
            let sample = BitsetSample::from_states(cube, &instance);
            let census = ComponentCensus::compute_parallel(cube, &sample, exec.census_threads);
            (census.giant_fraction(), census.num_components() == 1)
        });
        let mut giant_total = 0.0;
        let mut connected_count = 0u32;
        for point in per_trial {
            giant_total += point.value.0;
            connected_count += u32::from(point.value.1);
        }
        (giant_total, connected_count)
    };
    HypercubePoint {
        p,
        giant_fraction: giant_total / trials as f64,
        connectivity: connected_count as f64 / trials as f64,
    }
}

/// The E8a experiment.
#[derive(Debug, Clone)]
pub struct HypercubeGiantExperiment {
    /// Hypercube dimensions.
    pub dimensions: Vec<u32>,
    /// Multipliers `c` for the giant-component scan at `p = c/n`.
    pub giant_multipliers: Vec<f64>,
    /// Probabilities for the connectivity scan (around 1/2).
    pub connectivity_ps: Vec<f64>,
    /// Trials per point.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads (1 = sequential census; the reported
    /// numbers are identical for every value).
    pub census_threads: usize,
    /// Trial-batch lane request (0 = scalar engine; the reported numbers
    /// are identical for every value).
    pub trial_batch: usize,
}

impl HypercubeGiantExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        HypercubeGiantExperiment {
            // n = 16 (65 536 vertices, 524 288 edges per instance) sharpens
            // both threshold estimates; it assumes the parallel harness.
            dimensions: effort.pick(vec![10], vec![12, 14, 16]),
            giant_multipliers: vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0],
            connectivity_ps: vec![0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.70],
            trials: effort.pick(6, 30),
            base_seed: 0xFA03,
            threads: 1,
            census_threads: 1,
            trial_batch: 0,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Sets the trial-batch lane request (the `--trial-batch` knob;
    /// 0 keeps the scalar engine).
    #[must_use]
    pub fn with_trial_batch(mut self, trial_batch: usize) -> Self {
        self.trial_batch = trial_batch;
        self
    }

    /// The execution knobs this configuration runs under.
    fn exec(&self) -> TrialExec {
        TrialExec::sequential()
            .with_threads(self.threads)
            .with_census_threads(self.census_threads)
            .with_trial_batch(self.trial_batch)
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.hypercube_giant");
        let mut report = ExperimentReport::new(
            "E8a: hypercube giant component and connectivity thresholds",
            "§1.2 background — giant component at p ≈ 1/n (AKS 82), connectivity at p = 1/2",
        );
        for &n in &self.dimensions {
            // Giant-component scan at p = c/n.
            let mut giant_table = Table::new(["c (p = c/n)", "p", "giant fraction"]).with_title(
                format!("H_{{{n},p}} giant component scan ({} trials)", self.trials),
            );
            let mut giant_curve = Vec::new();
            for (i, &c) in self.giant_multipliers.iter().enumerate() {
                let p = (c / n as f64).min(1.0);
                let point = measure_hypercube_point(
                    n,
                    p,
                    self.trials,
                    self.base_seed + i as u64 * 31,
                    self.exec(),
                );
                giant_table.push_row([
                    format!("{c:.2}"),
                    fmt_float(p),
                    fmt_float(point.giant_fraction),
                ]);
                giant_curve.push((c, point.giant_fraction));
            }
            report.push_table(giant_table);
            if let Some(c_star) = crossing_point(&giant_curve, 0.25) {
                report.push_note(format!(
                    "n = {n}: giant fraction crosses 0.25 at c ≈ {c_star:.2} (paper/AKS predict a giant component for c > 1)"
                ));
            }

            // Connectivity scan around p = 1/2.
            let mut conn_table = Table::new(["p", "giant fraction", "Pr[connected]"]).with_title(
                format!("H_{{{n},p}} connectivity scan ({} trials)", self.trials),
            );
            let mut conn_curve = Vec::new();
            for (i, &p) in self.connectivity_ps.iter().enumerate() {
                let point = measure_hypercube_point(
                    n,
                    p,
                    self.trials,
                    self.base_seed + 991 + i as u64,
                    self.exec(),
                );
                conn_table.push_row([
                    format!("{p:.2}"),
                    fmt_float(point.giant_fraction),
                    fmt_float(point.connectivity),
                ]);
                conn_curve.push((p, point.connectivity));
            }
            report.push_table(conn_table);
            if let Some(p_star) = crossing_point(&conn_curve, 0.5) {
                report.push_note(format!(
                    "n = {n}: connectivity probability crosses 1/2 at p ≈ {p_star:.2} (Erdős–Spencer predict p = 0.5 asymptotically)"
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giant_fraction_transitions_around_one_over_n() {
        let exec = TrialExec::sequential().with_threads(2);
        let sub = measure_hypercube_point(10, 0.25 / 10.0, 6, 1, exec);
        let sup = measure_hypercube_point(10, 3.0 / 10.0, 6, 1, exec.with_census_threads(2));
        assert!(
            sub.giant_fraction < 0.2,
            "subcritical {}",
            sub.giant_fraction
        );
        assert!(
            sup.giant_fraction > 0.4,
            "supercritical {}",
            sup.giant_fraction
        );
    }

    #[test]
    fn connectivity_transitions_around_one_half() {
        let below = measure_hypercube_point(10, 0.35, 6, 2, TrialExec::sequential());
        let above = measure_hypercube_point(
            10,
            0.65,
            6,
            2,
            TrialExec::sequential().with_census_threads(2),
        );
        assert!(below.connectivity < above.connectivity + 1e-9);
        assert!(above.connectivity > 0.5);
    }

    #[test]
    fn batched_point_is_bit_identical_to_scalar() {
        // Trial-order summation makes even the f64 addition sequence match,
        // so the batched means are *equal*, not merely close.
        let scalar = measure_hypercube_point(8, 0.4, 10, 7, TrialExec::sequential());
        for trial_batch in [1, 4, 64, 200] {
            for threads in [1, 3] {
                let exec = TrialExec::sequential()
                    .with_threads(threads)
                    .with_trial_batch(trial_batch);
                let batched = measure_hypercube_point(8, 0.4, 10, 7, exec);
                assert_eq!(scalar, batched, "batch {trial_batch}, threads {threads}");
            }
        }
    }

    #[test]
    fn quick_report_renders() {
        let report = HypercubeGiantExperiment::quick().run();
        assert_eq!(report.tables().len(), 2);
        assert!(!report.notes().is_empty());
        assert!(report.render().contains("giant"));
    }

    #[test]
    fn quick_report_is_byte_identical_with_batching() {
        let scalar = HypercubeGiantExperiment::quick().run().render();
        let batched = HypercubeGiantExperiment::quick()
            .with_trial_batch(64)
            .run()
            .render();
        assert_eq!(scalar, batched);
    }
}
