//! E1/E3 — the hypercube routing phase transition (Theorem 3).
//!
//! For `p = n^{-α}` the paper proves that local routing complexity is
//! polynomial in `n` for `α < 1/2` (Theorem 3(ii)) and `2^{Ω(n^β)}` for
//! `α > 1/2` (Theorem 3(i)). This experiment sweeps `α` across the predicted
//! transition for several dimensions and measures the cost of the
//! Theorem 3(ii) segment router (with the flooding router as the classical
//! baseline), reporting:
//!
//! * the conditioned mean probe count as a function of `α` (the "figure":
//!   log-cost against `α`, one series per dimension),
//! * the fraction of trials stopped by the probe budget (a direct signature
//!   of the hard phase),
//! * the location of the steepest rise of the log-cost curve — the measured
//!   transition point, to compare against the predicted `α = 1/2`.

use faultnet_analysis::figure::{AsciiFigure, Scale, Series};
use faultnet_analysis::phase::steepest_rise;
use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::hypercube::SegmentRouter;
use faultnet_topology::hypercube::Hypercube;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// One measured point of the `α` sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPoint {
    /// Hypercube dimension `n`.
    pub dimension: u32,
    /// Fault exponent `α` (so `p = n^{-α}`).
    pub alpha: f64,
    /// The edge retention probability `p = n^{-α}`.
    pub p: f64,
    /// Fraction of sampled instances in which the pair was connected.
    pub connectivity_rate: f64,
    /// Fraction of conditioned trials the router completed within budget.
    pub success_rate: f64,
    /// Fraction of conditioned trials stopped by the probe budget.
    pub budget_exhaustion_rate: f64,
    /// Mean probe count over completed trials (`NaN` if none).
    pub mean_probes: f64,
    /// 90th percentile of the completed-trial probe counts (`NaN` if none).
    pub p90_probes: f64,
    /// Mean *cost*, where budget-exhausted trials are charged the full
    /// budget (a lower bound on their true cost).
    pub mean_cost: f64,
}

/// Measures one `(n, α)` point with the segment router, fanning the
/// conditioned trials across `threads` workers (1 = sequential; the result
/// is identical either way); `census_threads > 1` switches each trial's
/// conditioning check to the parallel census (bit-identical numbers).
pub fn measure_alpha_point(
    dimension: u32,
    alpha: f64,
    trials: u32,
    probe_budget: u64,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> AlphaPoint {
    let cube = Hypercube::new(dimension);
    let p = (dimension as f64).powf(-alpha).min(1.0);
    let harness = ComplexityHarness::new(cube, PercolationConfig::new(p, base_seed))
        .with_probe_budget(probe_budget)
        .with_census_threads(census_threads);
    let (u, v) = cube.canonical_pair();
    let router = SegmentRouter::for_alpha(alpha, 16);
    let stats = harness.measure_parallel(&router, u, v, trials, threads);
    let summary = Summary::from_counts(stats.probe_counts().iter().copied());
    let conditioned = stats.conditioned_trials().max(1) as f64;
    let mean_cost = (stats.probe_counts().iter().sum::<u64>() as f64
        + stats.budget_exhaustions() as f64 * probe_budget as f64)
        / conditioned;
    AlphaPoint {
        dimension,
        alpha,
        p,
        connectivity_rate: stats.connectivity_rate(),
        success_rate: stats.success_rate(),
        budget_exhaustion_rate: stats.budget_exhaustions() as f64 / conditioned,
        mean_probes: summary.mean(),
        p90_probes: summary.quantile(0.9),
        mean_cost: if stats.conditioned_trials() == 0 {
            f64::NAN
        } else {
            mean_cost
        },
    }
}

/// The E1/E3 experiment: sweep `α` across the predicted transition.
#[derive(Debug, Clone)]
pub struct HypercubeTransitionExperiment {
    /// Hypercube dimensions to sweep.
    pub dimensions: Vec<u32>,
    /// Fault exponents `α` to sweep.
    pub alphas: Vec<f64>,
    /// Independent percolation instances per point.
    pub trials: u32,
    /// Probe budget per trial (trials exceeding it are reported as such).
    pub probe_budget: u64,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads for the conditioned trials (1 = sequential; the
    /// reported numbers are identical for every value).
    pub threads: usize,
    /// Intra-census worker threads for the conditioning checks
    /// (1 = sequential; the reported numbers are identical for every
    /// value).
    pub census_threads: usize,
}

impl HypercubeTransitionExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        HypercubeTransitionExperiment {
            // The n = 16 point (65 536 vertices) exists to sharpen the
            // measured transition location; it is only tractable with the
            // parallel harness.
            dimensions: effort.pick(vec![9, 11], vec![10, 12, 14, 16]),
            alphas: effort.pick(
                vec![0.1, 0.3, 0.5, 0.7, 0.9],
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            ),
            trials: effort.pick(8, 40),
            probe_budget: effort.pick(30_000, 400_000),
            base_seed: 0xFA01,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the sweep and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.hypercube_transition");
        let mut report = ExperimentReport::new(
            "E1/E3: hypercube routing phase transition",
            "Theorem 3 — local routing is polynomial for α < 1/2 and exponential for α > 1/2",
        );
        let mut figure = AsciiFigure::new(
            "mean routing cost (log10) vs fault exponent α — segment router, one series per n",
        )
        .with_scales(Scale::Linear, Scale::Log)
        .with_size(64, 18);

        for &n in &self.dimensions {
            let mut table = Table::new([
                "alpha",
                "p = n^-alpha",
                "connected",
                "success",
                "budget-hit",
                "mean probes",
                "p90 probes",
                "mean cost",
            ])
            .with_title(format!("hypercube n = {n} ({} trials/point)", self.trials));
            let mut series_points = Vec::new();
            let mut transition_curve = Vec::new();
            for (i, &alpha) in self.alphas.iter().enumerate() {
                let point = measure_alpha_point(
                    n,
                    alpha,
                    self.trials,
                    self.probe_budget,
                    self.base_seed.wrapping_add(i as u64 * 1000 + n as u64),
                    self.threads,
                    self.census_threads,
                );
                table.push_row([
                    format!("{alpha:.2}"),
                    fmt_float(point.p),
                    fmt_float(point.connectivity_rate),
                    fmt_float(point.success_rate),
                    fmt_float(point.budget_exhaustion_rate),
                    fmt_float(point.mean_probes),
                    fmt_float(point.p90_probes),
                    fmt_float(point.mean_cost),
                ]);
                if point.mean_cost.is_finite() {
                    series_points.push((alpha, point.mean_cost));
                    transition_curve.push((alpha, point.mean_cost.ln()));
                }
            }
            report.push_table(table);
            if let Some(alpha_star) = steepest_rise(&transition_curve) {
                report.push_note(format!(
                    "n = {n}: steepest rise of log-cost at α ≈ {alpha_star:.2} (paper predicts the transition at α = 0.5)"
                ));
            }
            figure = figure.with_series(Series::new(format!("{n}"), series_points));
        }
        report.push_figure(figure.render());
        report.push_note(
            "Budget-exhausted trials are charged the full budget, so the reported cost in the hard \
             phase is a lower bound."
                .to_string(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_regime_is_cheap_and_complete() {
        let point = measure_alpha_point(10, 0.2, 8, 50_000, 7, 1, 1);
        assert!(point.connectivity_rate > 0.9);
        assert_eq!(point.success_rate, 1.0);
        assert_eq!(point.budget_exhaustion_rate, 0.0);
        assert!(point.mean_probes < 5_000.0);
        assert!((point.p - 10f64.powf(-0.2)).abs() < 1e-12);
    }

    #[test]
    fn hard_regime_costs_much_more_than_easy_regime() {
        // α = 0.75 (> 1/2) vs α = 0.25 (< 1/2) on the 11-cube: the conditioned
        // mean cost must be markedly larger in the hard regime.
        let easy = measure_alpha_point(11, 0.25, 8, 100_000, 11, 2, 2);
        let hard = measure_alpha_point(11, 0.75, 8, 100_000, 11, 2, 2);
        assert!(easy.mean_cost.is_finite());
        if hard.mean_cost.is_finite() {
            assert!(
                hard.mean_cost > 3.0 * easy.mean_cost,
                "hard {} vs easy {}",
                hard.mean_cost,
                easy.mean_cost
            );
        }
    }

    #[test]
    fn quick_experiment_produces_a_full_report() {
        let report = HypercubeTransitionExperiment::quick().run();
        assert_eq!(report.tables().len(), 2);
        assert_eq!(report.figures().len(), 1);
        assert!(!report.notes().is_empty());
        let text = report.render();
        assert!(text.contains("Theorem 3"));
        assert!(text.contains("alpha"));
    }

    #[test]
    fn effort_configurations_differ() {
        let quick = HypercubeTransitionExperiment::quick();
        let full = HypercubeTransitionExperiment::full();
        assert!(quick.trials < full.trials);
        assert!(quick.alphas.len() < full.alphas.len());
        assert!(quick.probe_budget < full.probe_budget);
    }
}
