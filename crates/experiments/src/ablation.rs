//! E10 — ablations of the design choices called out in DESIGN.md.
//!
//! Three questions the headline experiments keep fixed:
//!
//! 1. **Hypercube router choice** (Theorem 3(ii) remark). How much of the
//!    segment router's cheapness comes from the landmark structure rather
//!    than from greediness? Compared: strict greedy, greedy with detours,
//!    target-directed DFS, the segment router, and flooding — same instances,
//!    same conditioning.
//! 2. **Mesh search escalation** (Theorem 4). The paper's algorithm searches
//!    around the current landmark without a depth limit; does starting
//!    shallow and escalating change the probe count?
//! 3. **Lazy vs eager sampling.** The lazy hashing sampler must agree edge
//!    for edge with an eagerly materialised copy of the same instance — this
//!    is the correctness property the whole probe-accounting design rests on.

use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_percolation::sample::{BitsetSample, EdgeStates, FrozenSample};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::bfs::FloodRouter;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::dfs::{DepthFirstRouter, NeighborOrder};
use faultnet_routing::hypercube::{GreedyHypercubeRouter, SegmentRouter};
use faultnet_routing::mesh::MeshLandmarkRouter;
use faultnet_routing::router::Router;
use faultnet_topology::hypercube::Hypercube;
use faultnet_topology::mesh::Mesh;
use faultnet_topology::Topology;

use crate::report::{Effort, ExperimentReport};

/// Summary of one router in the hypercube router ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterAblationRow {
    /// Router name.
    pub router: String,
    /// Success rate under the `{u ∼ v}` conditioning.
    pub success_rate: f64,
    /// Mean probes over successful trials.
    pub mean_probes: f64,
    /// Median probes over successful trials.
    pub median_probes: f64,
}

/// Runs the hypercube router ablation at one `(n, p)` point, fanning the
/// conditioned trials across `threads` workers (1 = sequential; the result
/// is identical either way).
pub fn hypercube_router_ablation(
    dimension: u32,
    p: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> Vec<RouterAblationRow> {
    let cube = Hypercube::new(dimension);
    let (u, v) = cube.canonical_pair();
    let harness = ComplexityHarness::new(cube, PercolationConfig::new(p, base_seed))
        .with_census_threads(census_threads);
    let routers: Vec<Box<dyn Router<Hypercube, faultnet_percolation::EdgeSampler> + Sync>> = vec![
        Box::new(GreedyHypercubeRouter::strict()),
        Box::new(GreedyHypercubeRouter::with_detours(100_000)),
        Box::new(DepthFirstRouter::new(NeighborOrder::GreedyTowardsTarget)),
        Box::new(SegmentRouter::default()),
        Box::new(FloodRouter::new()),
    ];
    routers
        .iter()
        .map(|router| {
            let stats = harness.measure_parallel(router, u, v, trials, threads);
            let summary = Summary::from_counts(stats.probe_counts().iter().copied());
            RouterAblationRow {
                router: router.name(),
                success_rate: stats.success_rate(),
                mean_probes: summary.mean(),
                median_probes: summary.median(),
            }
        })
        .collect()
}

/// Runs the mesh escalation ablation at one `(p, distance)` point; returns
/// `(label, mean probes)` rows.
pub fn mesh_escalation_ablation(
    p: f64,
    side: u64,
    trials: u32,
    base_seed: u64,
    threads: usize,
    census_threads: usize,
) -> Vec<(String, f64)> {
    let mesh = Mesh::new(2, side);
    let (u, v) = mesh.canonical_pair();
    let harness = ComplexityHarness::new(mesh, PercolationConfig::new(p, base_seed))
        .with_census_threads(census_threads);
    let variants: Vec<(String, MeshLandmarkRouter)> = vec![
        ("unbounded (paper)".to_string(), MeshLandmarkRouter::new()),
        (
            "escalating 1..4".to_string(),
            MeshLandmarkRouter::with_escalation(1, 4),
        ),
        (
            "escalating 2..16".to_string(),
            MeshLandmarkRouter::with_escalation(2, 16),
        ),
    ];
    variants
        .into_iter()
        .map(|(label, router)| {
            let stats = harness.measure_parallel(&router, u, v, trials, threads);
            (
                label,
                Summary::from_counts(stats.probe_counts().iter().copied()).mean(),
            )
        })
        .collect()
}

/// Checks that the lazy sampler, an eagerly frozen copy, and the bitset
/// materialisation all agree on every edge of the given hypercube instance;
/// returns `(edges, open_edges, disagreements)` where a disagreement is any
/// edge on which one of the materialised views differs from the lazy
/// sampler.
pub fn sampling_agreement(dimension: u32, p: f64, seed: u64) -> (u64, u64, u64) {
    let cube = Hypercube::new(dimension);
    let sampler = PercolationConfig::new(p, seed).sampler();
    let frozen = FrozenSample::from_sampler(&cube, &sampler);
    let bitset = BitsetSample::from_states(&cube, &sampler);
    let mut open = 0u64;
    let mut disagreements = 0u64;
    let edges = cube.edges();
    for e in &edges {
        let lazy = sampler.is_open(*e);
        if lazy {
            open += 1;
        }
        if lazy != frozen.is_open(*e) || lazy != bitset.is_open(*e) {
            disagreements += 1;
        }
    }
    (edges.len() as u64, open, disagreements)
}

/// The E10 experiment.
#[derive(Debug, Clone)]
pub struct AblationExperiment {
    /// Hypercube dimension for the router ablation.
    pub dimension: u32,
    /// Retention probabilities for the router ablation.
    pub hypercube_ps: Vec<f64>,
    /// Mesh side length for the escalation ablation.
    pub mesh_side: u64,
    /// Retention probability for the escalation ablation.
    pub mesh_p: f64,
    /// Trials per point.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads for the conditioned trials (1 = sequential; the
    /// reported numbers are identical for every value).
    pub threads: usize,
    /// Intra-census worker threads for the conditioning checks
    /// (1 = sequential; the reported numbers are identical for every
    /// value).
    pub census_threads: usize,
}

impl AblationExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        AblationExperiment {
            dimension: effort.pick(9, 12),
            hypercube_ps: vec![0.6, 0.4, 0.25],
            mesh_side: effort.pick(17, 41),
            mesh_p: 0.65,
            trials: effort.pick(10, 40),
            base_seed: 0xFA10,
            threads: 1,
            census_threads: 1,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Runs the ablations and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.ablation");
        let mut report = ExperimentReport::new(
            "E10: ablations (router choice, search escalation, sampling)",
            "design-choice ablations for the Theorem 3(ii)/Theorem 4 algorithms and the sampling substrate",
        );
        for (pi, &p) in self.hypercube_ps.iter().enumerate() {
            let mut table = Table::new(["router", "success rate", "mean probes", "median probes"])
                .with_title(format!(
                    "hypercube n = {}, p = {p} ({} trials)",
                    self.dimension, self.trials
                ));
            let rows = hypercube_router_ablation(
                self.dimension,
                p,
                self.trials,
                self.base_seed.wrapping_add(pi as u64 * 67),
                self.threads,
                self.census_threads,
            );
            for row in rows {
                table.push_row([
                    row.router,
                    fmt_float(row.success_rate),
                    fmt_float(row.mean_probes),
                    fmt_float(row.median_probes),
                ]);
            }
            report.push_table(table);
        }
        report.push_note(
            "Strict greedy is cheapest when it succeeds but its success rate collapses as faults \
             grow; the segment router keeps a 100% conditioned success rate at a small multiple of \
             the greedy cost, which is exactly the Theorem 3(ii) remark about greedy routing needing \
             a more extensive search near the target."
                .to_string(),
        );

        let mut mesh_table =
            Table::new(["per-gap search policy", "mean probes"]).with_title(format!(
                "mesh landmark escalation ablation (side {}, p = {}, {} trials)",
                self.mesh_side, self.mesh_p, self.trials
            ));
        for (label, probes) in mesh_escalation_ablation(
            self.mesh_p,
            self.mesh_side,
            self.trials,
            self.base_seed ^ 0x1111,
            self.threads,
            self.census_threads,
        ) {
            mesh_table.push_row([label, fmt_float(probes)]);
        }
        report.push_table(mesh_table);

        let (edges, open, disagreements) =
            sampling_agreement(self.dimension, 0.5, self.base_seed ^ 0x2222);
        let mut sampling_table = Table::new(["edges", "open edges", "lazy/eager disagreements"])
            .with_title("lazy vs materialised (frozen set + bitset) sampling of the same instance");
        sampling_table.push_row([
            edges.to_string(),
            open.to_string(),
            disagreements.to_string(),
        ]);
        report.push_table(sampling_table);
        report.push_note(format!(
            "sampling agreement: {disagreements} disagreements over {edges} edges (must be 0)"
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_ablation_orders_routers_sensibly() {
        let rows = hypercube_router_ablation(9, 0.6, 10, 3, 2, 2);
        assert_eq!(rows.len(), 5);
        let flood = rows.iter().find(|r| r.router.contains("flood")).unwrap();
        let segment = rows.iter().find(|r| r.router.contains("segment")).unwrap();
        assert_eq!(flood.success_rate, 1.0);
        assert_eq!(segment.success_rate, 1.0);
        assert!(segment.mean_probes < flood.mean_probes);
    }

    #[test]
    fn mesh_escalation_variants_all_complete() {
        let rows = mesh_escalation_ablation(0.7, 13, 8, 5, 1, 2);
        assert_eq!(rows.len(), 3);
        for (label, probes) in rows {
            assert!(probes.is_finite(), "{label} produced no successes");
        }
    }

    #[test]
    fn lazy_and_eager_sampling_agree() {
        let (edges, open, disagreements) = sampling_agreement(8, 0.5, 9);
        assert_eq!(disagreements, 0);
        assert!(open > 0 && open < edges);
    }

    #[test]
    fn quick_report_renders() {
        let report = AblationExperiment::quick().run();
        assert!(report.tables().len() >= 5);
        assert!(report
            .notes()
            .iter()
            .any(|n| n.contains("sampling agreement: 0 disagreements")));
    }
}
