//! E11 — the fault-model scenario matrix: the paper's headline grids rerun
//! under every pluggable fault model, side by side.
//!
//! The paper proves its theorems for i.i.d. Bernoulli *edge* faults. This
//! experiment asks how far each result's *shape* survives when the fault
//! process changes: independent node (router) faults, geometrically
//! correlated fault regions, and budgeted adversarial cuts. Two grids are
//! rerun — the Theorem 4 mesh-routing distance sweep (E4) and the §1.2
//! hypercube giant-component/connectivity scan (E8a) — with one column per
//! model, so the benign-vs-structured-vs-adversarial gap is read straight
//! across each row.
//!
//! What the theory predicts (and the tables exhibit):
//!
//! * **Theorem 4 / mesh** — supercritical mesh routing stays `O(distance)`
//!   under node faults and correlated regions (both are still finite local
//!   perturbations of a supercritical percolation, cf. arXiv:1301.5993 for
//!   the node case); the adversary inflates the constant near the source
//!   but cannot change the exponent while its budget is below the source
//!   degree.
//! * **§1.2 / hypercube** — the giant-component threshold is robust to the
//!   benign models (node faults shift the curve by the survival factor `p`;
//!   a constant number of radius-`r` regions is vanishing volume), while
//!   connectivity is *fragile*: any dead vertex disconnects the cube, so
//!   the connectivity column collapses for every non-edge model.

use faultnet_analysis::stats::Summary;
use faultnet_analysis::table::{fmt_float, Table};
use faultnet_faultmodel::{FaultModel, FaultModelSpec};
use faultnet_percolation::PercolationConfig;
use faultnet_routing::complexity::ComplexityHarness;
use faultnet_routing::mesh::MeshLandmarkRouter;

use crate::exec::TrialExec;
use crate::hypercube_giant::measure_hypercube_point_with_model;
use crate::mesh_routing::mesh_and_pair;
use crate::report::{Effort, ExperimentReport};

/// One measured mesh point under one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelMeshPoint {
    /// Fraction of instances in which the pair was connected.
    pub connectivity_rate: f64,
    /// Conditioned mean probes of the landmark router (`NaN` if no trial
    /// conditioned).
    pub mean_probes: f64,
}

/// Measures the E4 landmark-router point (2-d mesh, straight pair at
/// `distance`) under `model`, fanning trials across `exec.threads` workers;
/// with `exec.census_threads > 1` each trial's conditioning check runs on
/// the parallel census, and `exec.trial_batch > 0` routes the measurement
/// through the trial-batched harness — bit-identical numbers in every
/// configuration (non-lane-batchable models fall back to the scalar loop
/// after a one-shot stderr note).
pub fn measure_mesh_point_with_model<M: FaultModel + Sync + ?Sized>(
    model: &M,
    p: f64,
    distance: u64,
    trials: u32,
    base_seed: u64,
    exec: TrialExec,
) -> ModelMeshPoint {
    let (mesh, u, v) = mesh_and_pair(2, distance);
    let harness = ComplexityHarness::new(mesh, PercolationConfig::new(p, base_seed))
        .with_census_threads(exec.census_threads);
    let router = MeshLandmarkRouter::new();
    let stats = if exec.batched() {
        harness.measure_batched_with_model(
            model,
            &router,
            u,
            v,
            trials,
            exec.trial_batch,
            exec.threads,
        )
    } else {
        harness.measure_parallel_with_model(model, &router, u, v, trials, exec.threads)
    };
    ModelMeshPoint {
        connectivity_rate: stats.connectivity_rate(),
        mean_probes: Summary::from_counts(stats.probe_counts().iter().copied()).mean(),
    }
}

/// The E11 experiment.
#[derive(Debug, Clone)]
pub struct FaultModelsExperiment {
    /// Models to compare (columns of every table, in [`FaultModelSpec::ALL`]
    /// order unless restricted by `--fault-model`).
    pub models: Vec<FaultModelSpec>,
    /// Mesh retention probabilities (above `p_c² = 1/2`).
    pub mesh_ps: Vec<f64>,
    /// Mesh pair distances.
    pub mesh_distances: Vec<u64>,
    /// Trials per mesh point.
    pub mesh_trials: u32,
    /// Hypercube dimension for the giant/connectivity scan.
    pub cube_dimension: u32,
    /// Hypercube survival probabilities.
    pub cube_ps: Vec<f64>,
    /// Trials per hypercube point.
    pub cube_trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (1 = sequential; the reported numbers are identical
    /// for every value).
    pub threads: usize,
    /// Intra-census worker threads (1 = sequential census; the reported
    /// numbers are identical for every value).
    pub census_threads: usize,
    /// Trial-batch lane request (0 = scalar engine; the reported numbers
    /// are identical for every value — the adversarial column always runs
    /// scalar, by [`FaultModel::lane_batchable`]).
    pub trial_batch: usize,
}

impl FaultModelsExperiment {
    /// Configuration at the requested effort level.
    pub fn with_effort(effort: Effort) -> Self {
        FaultModelsExperiment {
            models: FaultModelSpec::ALL.to_vec(),
            mesh_ps: effort.pick(vec![0.8], vec![0.7, 0.8, 0.9]),
            mesh_distances: effort.pick(vec![8, 16], vec![10, 20, 40, 80]),
            mesh_trials: effort.pick(8, 30),
            cube_dimension: effort.pick(8, 12),
            cube_ps: effort.pick(
                vec![0.3, 0.6, 0.9],
                vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            ),
            cube_trials: effort.pick(6, 20),
            base_seed: 0xFA11,
            threads: 1,
            census_threads: 1,
            trial_batch: 0,
        }
    }

    /// Quick configuration (seconds) for tests and benches.
    pub fn quick() -> Self {
        Self::with_effort(Effort::Quick)
    }

    /// Full configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self::with_effort(Effort::Full)
    }

    /// Sets the worker-thread count (the `--threads` knob of the binaries).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-census worker count (the `--census-threads` knob).
    #[must_use]
    pub fn with_census_threads(mut self, census_threads: usize) -> Self {
        self.census_threads = census_threads.max(1);
        self
    }

    /// Sets the trial-batch lane request (the `--trial-batch` knob;
    /// 0 keeps the scalar engine).
    #[must_use]
    pub fn with_trial_batch(mut self, trial_batch: usize) -> Self {
        self.trial_batch = trial_batch;
        self
    }

    /// The execution knobs this configuration runs under.
    fn exec(&self) -> TrialExec {
        TrialExec::sequential()
            .with_threads(self.threads)
            .with_census_threads(self.census_threads)
            .with_trial_batch(self.trial_batch)
    }

    /// Restricts the comparison to one model (the `--fault-model` knob);
    /// `None` keeps all models side by side.
    #[must_use]
    pub fn with_fault_model(mut self, model: Option<FaultModelSpec>) -> Self {
        if let Some(spec) = model {
            self.models = vec![spec];
        }
        self
    }

    /// Runs the experiment and assembles the report.
    pub fn run(&self) -> ExperimentReport {
        let _span = faultnet_obs::span("experiment.fault_models");
        let mut report = ExperimentReport::new(
            "E11: fault-model scenario matrix",
            "Theorem 4 + §1.2 grids under node, correlated, and adversarial fault models",
        );
        let built: Vec<(FaultModelSpec, Box<dyn FaultModel + Send + Sync>)> =
            self.models.iter().map(|s| (*s, s.build())).collect();
        // Seed offsets key on the model's *canonical* index, not its position
        // in the (possibly --fault-model-restricted) column list, so a
        // single-model rerun byte-reproduces its column of the full matrix.
        let canonical_index = |spec: FaultModelSpec| -> u64 {
            FaultModelSpec::ALL
                .iter()
                .position(|s| *s == spec)
                .expect("specs come from FaultModelSpec::ALL") as u64
        };

        // Grid 1: Theorem 4 mesh routing, one probe column per model.
        for (pi, &p) in self.mesh_ps.iter().enumerate() {
            let mut headers = vec!["distance".to_string()];
            headers.extend(built.iter().map(|(s, _)| format!("{s} probes")));
            let mut table = Table::new(headers).with_title(format!(
                "landmark routing on the 2-d mesh, p = {p} ({} trials/point)",
                self.mesh_trials
            ));
            for (di, &distance) in self.mesh_distances.iter().enumerate() {
                let mut row = vec![distance.to_string()];
                for (spec, model) in &built {
                    let point = measure_mesh_point_with_model(
                        model,
                        p,
                        distance,
                        self.mesh_trials,
                        self.base_seed
                            .wrapping_add((pi as u64) << 24)
                            .wrapping_add((di as u64) << 8)
                            .wrapping_add(canonical_index(*spec)),
                        self.exec(),
                    );
                    row.push(fmt_float(point.mean_probes));
                }
                table.push_row(row);
            }
            report.push_table(table);
        }

        // Grid 2: hypercube giant fraction and connectivity per model.
        let n = self.cube_dimension;
        let mut giant = Table::new(
            std::iter::once("p".to_string())
                .chain(built.iter().map(|(s, _)| format!("{s} giant")))
                .collect::<Vec<_>>(),
        )
        .with_title(format!(
            "H_{{{n},p}} giant fraction per fault model ({} trials)",
            self.cube_trials
        ));
        let mut conn = Table::new(
            std::iter::once("p".to_string())
                .chain(built.iter().map(|(s, _)| format!("{s} Pr[conn]")))
                .collect::<Vec<_>>(),
        )
        .with_title(format!(
            "H_{{{n},p}} connectivity per fault model ({} trials)",
            self.cube_trials
        ));
        for (qi, &p) in self.cube_ps.iter().enumerate() {
            let mut giant_row = vec![format!("{p:.2}")];
            let mut conn_row = vec![format!("{p:.2}")];
            for (spec, model) in &built {
                let point = measure_hypercube_point_with_model(
                    model,
                    n,
                    p,
                    self.cube_trials,
                    self.base_seed
                        .wrapping_add(0xC0DE)
                        .wrapping_add((qi as u64) * 131)
                        .wrapping_add(canonical_index(*spec)),
                    self.exec(),
                );
                giant_row.push(fmt_float(point.giant_fraction));
                conn_row.push(fmt_float(point.connectivity));
            }
            giant.push_row(giant_row);
            conn.push_row(conn_row);
        }
        report.push_table(giant);
        report.push_table(conn);

        report.push_note(
            "Theorem 4's O(distance) shape is robust to node and correlated faults \
             (supercritical percolation survives local perturbations); the adversary \
             raises the constant near the source while its budget stays below deg(u)."
                .to_string(),
        );
        report.push_note(
            "Hypercube connectivity is fragile outside the edge model: one dead vertex \
             disconnects H_n, so Pr[connected] collapses for node/correlated faults even \
             where the giant component persists."
                .to_string(),
        );
        for (spec, model) in &built {
            // Record the shape parameters behind each parameterised column.
            if model.name() != spec.cli_name() {
                report.push_note(format!("{spec} = {}", model.name()));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_one_probe_column_per_model() {
        let report = FaultModelsExperiment::quick().run();
        // One mesh table per p, plus the giant and connectivity tables.
        let expected_tables = FaultModelsExperiment::quick().mesh_ps.len() + 2;
        assert_eq!(report.tables().len(), expected_tables);
        assert_eq!(
            report.tables()[0].num_columns(),
            1 + FaultModelSpec::ALL.len()
        );
        assert!(report.render().contains("bernoulli-nodes"));
        assert!(report.render_markdown().contains("### E11"));
    }

    #[test]
    fn fault_model_restriction_narrows_the_columns() {
        let report = FaultModelsExperiment::quick()
            .with_fault_model(Some(FaultModelSpec::AdversarialBudget))
            .run();
        assert_eq!(report.tables()[0].num_columns(), 2);
        assert!(!report.render().contains("bernoulli-nodes giant"));
    }

    #[test]
    fn restricted_run_reproduces_its_full_matrix_column() {
        // Seed offsets key on the canonical model index, so rerunning one
        // model with --fault-model must byte-reproduce its column of the
        // full side-by-side matrix.
        let full = FaultModelsExperiment::quick().run();
        let only = FaultModelsExperiment::quick()
            .with_fault_model(Some(FaultModelSpec::AdversarialBudget))
            .run();
        let column = 1 + FaultModelSpec::ALL
            .iter()
            .position(|s| *s == FaultModelSpec::AdversarialBudget)
            .unwrap();
        for (full_table, only_table) in full.tables().iter().zip(only.tables()) {
            for (full_row, only_row) in full_table.rows().iter().zip(only_table.rows()) {
                assert_eq!(
                    full_row[column], only_row[1],
                    "restricted adversarial column diverged from the full matrix"
                );
            }
        }
    }

    #[test]
    fn node_faults_are_harsher_than_edge_faults_on_the_mesh() {
        let exec = TrialExec::sequential().with_threads(2);
        let edge = measure_mesh_point_with_model(
            &faultnet_faultmodel::BernoulliEdges::new(),
            0.9,
            8,
            12,
            7,
            exec,
        );
        let node = measure_mesh_point_with_model(
            &faultnet_faultmodel::BernoulliNodes::new(),
            0.9,
            8,
            12,
            7,
            exec.with_census_threads(2),
        );
        assert!(edge.connectivity_rate > 0.0);
        assert!(
            node.connectivity_rate <= edge.connectivity_rate,
            "node {} vs edge {}",
            node.connectivity_rate,
            edge.connectivity_rate
        );
    }

    #[test]
    fn hypercube_connectivity_collapses_under_node_faults() {
        let exec = TrialExec::sequential().with_threads(2);
        let edge = measure_hypercube_point_with_model(
            &faultnet_faultmodel::BernoulliEdges::new(),
            8,
            0.9,
            6,
            3,
            exec,
        );
        let node = measure_hypercube_point_with_model(
            &faultnet_faultmodel::BernoulliNodes::new(),
            8,
            0.9,
            6,
            3,
            exec.with_census_threads(2),
        );
        // At p = 0.9 the edge-fault cube is essentially always connected;
        // with 256 vertices each dying w.p. 0.1, the node-fault cube has
        // dead (isolated) vertices in virtually every instance.
        assert!(edge.connectivity > node.connectivity);
        assert!(node.giant_fraction > 0.5, "giant survives node faults");
    }

    #[test]
    fn batched_matrix_is_byte_identical_to_scalar() {
        // The adversarial column exercises the scalar fallback inside an
        // otherwise-batched run; the benign columns exercise the multispin
        // engine end to end. Either way, the rendered report must not move
        // by a byte.
        let scalar = FaultModelsExperiment::quick().run().render();
        for trial_batch in [1, 64] {
            let batched = FaultModelsExperiment::quick()
                .with_trial_batch(trial_batch)
                .with_threads(2)
                .run()
                .render();
            assert_eq!(scalar, batched, "trial_batch {trial_batch}");
        }
    }
}
