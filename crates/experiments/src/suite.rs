//! The experiment registry — the single source of truth for what `run_all`
//! executes.
//!
//! Kept as a library function so the `run_all` binary and the end-to-end
//! regression tests run the exact same sequence: the tests assert that the
//! rendered output is byte-identical across `--threads` values, which is the
//! determinism contract the parallel harness promises.
//!
//! Every experiment registers itself exactly once, in [`registry`]; `run_all`
//! (and anything else that wants "every experiment") enumerates the registry
//! instead of maintaining a second hand-written list, so a newly registered
//! experiment is automatically picked up by `run_all_reports`, the
//! byte-identity regression test, and the docs listing. The registry's
//! uniqueness invariants are themselves tested.

use crate::{
    ablation::AblationExperiment, chemical_distance::ChemicalDistanceExperiment,
    churn::ChurnExperiment, double_tree::DoubleTreeExperiment, fault_models::FaultModelsExperiment,
    gnp::GnpExperiment, hypercube_giant::HypercubeGiantExperiment,
    hypercube_lower_bound::HypercubeLowerBoundExperiment,
    hypercube_transition::HypercubeTransitionExperiment, mesh_routing::MeshRoutingExperiment,
    mesh_threshold::MeshThresholdExperiment, open_questions::OpenQuestionsExperiment,
    real_world::RealWorldExperiment, Effort, ExperimentReport,
};

/// One registered experiment: its identity plus a uniform way to run it at
/// any effort/thread configuration.
pub struct RegisteredExperiment {
    /// Experiment id in the paper-mapping scheme (`"E4"`, `"E8a"`, …).
    pub id: &'static str,
    /// Name of the dedicated binary (`"exp_mesh_routing"`, …).
    pub binary: &'static str,
    /// One-line description (paper result or scenario).
    pub title: &'static str,
    /// Whether this experiment consumes the `--trial-batch` knob (the
    /// trial-fan-out experiments: E8a, E8b, E11, E13). For the rest the knob
    /// is a no-op — their trial structure has nothing for lanes to pack.
    pub supports_trial_batch: bool,
    run: fn(Effort, usize, usize, usize) -> ExperimentReport,
}

impl RegisteredExperiment {
    /// Runs the experiment at the given effort across `threads` trial
    /// workers and `census_threads` intra-census workers, with the
    /// trial-batched engine at `trial_batch` lanes (0 = scalar; ignored by
    /// experiments that don't [`Self::supports_trial_batch`]). All three
    /// knobs are pure wall-clock levers: the report is a function of
    /// `effort` alone.
    pub fn run(
        &self,
        effort: Effort,
        threads: usize,
        census_threads: usize,
        trial_batch: usize,
    ) -> ExperimentReport {
        // `binary` is 'static, so it doubles as the span name: one span per
        // experiment, visible in `--trace` output as `exp_mesh_routing` etc.
        let _span = faultnet_obs::span(self.binary);
        (self.run)(effort, threads, census_threads, trial_batch)
    }
}

/// Every experiment, in canonical E1→E13 order. The one list to extend when
/// adding an experiment; `run_all` and the end-to-end tests derive from it.
pub fn registry() -> Vec<RegisteredExperiment> {
    // A macro keeps each entry to one line and guarantees every experiment
    // is wired through the same with_effort/with_threads/run protocol. The
    // `scalar`/`batched` marker states whether the experiment's struct has a
    // `with_trial_batch` builder: `batched` entries forward the knob, the
    // rest drop it (their trial structure has nothing for lanes to pack).
    macro_rules! experiments {
        (@run scalar, $ty:ty) => {
            |effort, threads, census_threads, _trial_batch| {
                <$ty>::with_effort(effort)
                    .with_threads(threads)
                    .with_census_threads(census_threads)
                    .run()
            }
        };
        (@run batched, $ty:ty) => {
            |effort, threads, census_threads, trial_batch| {
                <$ty>::with_effort(effort)
                    .with_threads(threads)
                    .with_census_threads(census_threads)
                    .with_trial_batch(trial_batch)
                    .run()
            }
        };
        (@supports scalar) => {
            false
        };
        (@supports batched) => {
            true
        };
        ($($id:literal, $binary:literal, $title:literal => $marker:ident $ty:ty;)+) => {
            vec![$(RegisteredExperiment {
                id: $id,
                binary: $binary,
                title: $title,
                supports_trial_batch: experiments!(@supports $marker),
                run: experiments!(@run $marker, $ty),
            }),+]
        };
    }
    experiments! {
        "E1/E3", "exp_hypercube_transition", "Theorem 3 — hypercube routing phase transition" => scalar HypercubeTransitionExperiment;
        "E2", "exp_hypercube_lower_bound", "Lemma 5 — cut lower bound vs. measured cost" => scalar HypercubeLowerBoundExperiment;
        "E4", "exp_mesh_routing", "Theorem 4 — O(n) mesh routing above p_c" => scalar MeshRoutingExperiment;
        "E5", "exp_chemical_distance", "Lemma 8 — chemical distance is linear above p_c" => scalar ChemicalDistanceExperiment;
        "E6", "exp_double_tree", "Lemma 6 + Theorems 7, 9 — double tree local vs. oracle" => scalar DoubleTreeExperiment;
        "E7", "exp_gnp", "Theorems 10, 11 — G(n,p) local n² vs. oracle n^{3/2}" => scalar GnpExperiment;
        "E8a", "exp_hypercube_giant", "§1.2 — hypercube giant/connectivity thresholds" => batched HypercubeGiantExperiment;
        "E8b", "exp_mesh_threshold", "§1.2 — mesh percolation threshold" => batched MeshThresholdExperiment;
        "E9", "exp_open_questions", "§6 open questions — constant-degree families" => scalar OpenQuestionsExperiment;
        "E10", "exp_ablation", "design-choice ablations" => scalar AblationExperiment;
        "E11", "exp_fault_models", "fault-model scenario matrix (node/correlated/adversarial)" => batched FaultModelsExperiment;
        "E12", "exp_churn", "dynamic fault churn — incremental census over fail/repair dynamics" => scalar ChurnExperiment;
        "E13", "exp_real_world", "fault-model matrix on real-world/scale-free substrates" => batched RealWorldExperiment;
    }
}

/// Runs every registered experiment at the given effort across `threads`
/// trial workers and `census_threads` intra-census workers, the
/// trial-batched engine at `trial_batch` lanes (0 = scalar), in registry
/// order, and returns the reports.
///
/// The reported numbers are a pure function of `effort` (each experiment
/// bakes in its base seed); `threads`, `census_threads`, and `trial_batch`
/// only change wall-clock time.
pub fn run_all_reports(
    effort: Effort,
    threads: usize,
    census_threads: usize,
    trial_batch: usize,
) -> Vec<ExperimentReport> {
    registry()
        .iter()
        .map(|experiment| experiment.run(effort, threads, census_threads, trial_batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_ids_and_binaries_are_unique() {
        let experiments = registry();
        let ids: HashSet<_> = experiments.iter().map(|e| e.id).collect();
        let binaries: HashSet<_> = experiments.iter().map(|e| e.binary).collect();
        assert_eq!(ids.len(), experiments.len(), "duplicate experiment id");
        assert_eq!(binaries.len(), experiments.len(), "duplicate binary name");
    }

    #[test]
    fn fault_models_experiment_is_registered() {
        assert!(
            registry().iter().any(|e| e.binary == "exp_fault_models"),
            "exp_fault_models missing from the registry — run_all would skip it"
        );
    }

    #[test]
    fn churn_experiment_is_registered_as_scalar() {
        let experiments = registry();
        let churn = experiments
            .iter()
            .find(|e| e.binary == "exp_churn")
            .expect("exp_churn missing from the registry — run_all would skip it");
        assert_eq!(churn.id, "E12");
        assert!(
            !churn.supports_trial_batch,
            "the churn walk is a single evolving instance per trial; there \
             is no trial fan-out for the multispin engine to pack"
        );
    }

    #[test]
    fn exactly_the_trial_fan_out_experiments_support_batching() {
        let batched: Vec<&str> = registry()
            .iter()
            .filter(|e| e.supports_trial_batch)
            .map(|e| e.binary)
            .collect();
        assert_eq!(
            batched,
            [
                "exp_hypercube_giant",
                "exp_mesh_threshold",
                "exp_fault_models",
                "exp_real_world"
            ],
            "the --trial-batch consumers changed; update the binaries' \
             warn_trial_batch_ignored list and docs/EXPERIMENTS.md"
        );
    }
}
