//! The full experiment suite in canonical order — what `run_all` executes.
//!
//! Kept as a library function so the `run_all` binary and the end-to-end
//! regression tests run the exact same sequence: the tests assert that the
//! rendered output is byte-identical across `--threads` values, which is the
//! determinism contract the parallel harness promises.

use crate::{
    ablation::AblationExperiment, chemical_distance::ChemicalDistanceExperiment,
    double_tree::DoubleTreeExperiment, gnp::GnpExperiment,
    hypercube_giant::HypercubeGiantExperiment,
    hypercube_lower_bound::HypercubeLowerBoundExperiment,
    hypercube_transition::HypercubeTransitionExperiment, mesh_routing::MeshRoutingExperiment,
    mesh_threshold::MeshThresholdExperiment, open_questions::OpenQuestionsExperiment, Effort,
    ExperimentReport,
};

/// Runs every experiment at the given effort across `threads` workers, in
/// the canonical E1→E10 order, and returns the reports.
///
/// The reported numbers are a pure function of `effort` (each experiment
/// bakes in its base seed); `threads` only changes wall-clock time.
pub fn run_all_reports(effort: Effort, threads: usize) -> Vec<ExperimentReport> {
    vec![
        HypercubeTransitionExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        HypercubeLowerBoundExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        MeshRoutingExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        ChemicalDistanceExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        DoubleTreeExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        GnpExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        HypercubeGiantExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        MeshThresholdExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        OpenQuestionsExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
        AblationExperiment::with_effort(effort)
            .with_threads(threads)
            .run(),
    ]
}
