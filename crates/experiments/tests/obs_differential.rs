//! The zero-perturbation contract, enforced zoo-wide.
//!
//! The `faultnet_obs` instrumentation layer threads through every engine
//! this workspace owns (BFS conditioning, the scalar and multispin
//! percolation substrates, the parallel census, the routing harness, the
//! churn walk). Its contract is that observing a run never changes the
//! run: with instrumentation off, counting on, or full span tracing on,
//! every report renders to the **same bytes**.
//!
//! These tests run the entire registered experiment zoo at `Quick` effort
//! under all three instrumentation states — and across the wall-clock
//! knobs (`threads`, `census_threads`, `trial_batch`), whose worker
//! closures carry the per-thread flush calls — and `assert_eq!` the
//! rendered text and Markdown. The CI workflow repeats the same check at
//! the process level (`cmp` of `--trace` vs untraced stdout).
//!
//! The obs globals are process-wide, so every test here serialises on one
//! lock and restores the disabled state before releasing it.

use std::sync::Mutex;

use faultnet_experiments::report::Effort;
use faultnet_experiments::suite::{registry, run_all_reports};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs the whole zoo and renders each report both ways.
fn rendered_zoo(
    threads: usize,
    census_threads: usize,
    trial_batch: usize,
) -> Vec<(String, String)> {
    run_all_reports(Effort::Quick, threads, census_threads, trial_batch)
        .iter()
        .map(|report| (report.render(), report.render_markdown()))
        .collect()
}

#[test]
fn instrumentation_states_never_change_a_report_byte() {
    let _guard = OBS_LOCK.lock().unwrap();
    faultnet_obs::reset();

    let baseline = rendered_zoo(2, 1, 0);
    assert!(!baseline.is_empty(), "the registry is not empty");

    faultnet_obs::enable();
    let counted = rendered_zoo(2, 1, 0);

    faultnet_obs::enable_tracing();
    let traced = rendered_zoo(2, 1, 0);

    // The enabled runs actually recorded something — the comparison is not
    // vacuously passing against dead instrumentation.
    assert!(
        faultnet_obs::counter_value("routing.trials.conditioned") > 0,
        "no conditioned-trial counts recorded; is the routing harness instrumented?"
    );
    assert!(
        faultnet_obs::counter_value("percolation.bfs.calls") > 0
            || faultnet_obs::counter_value("census.unions") > 0,
        "no percolation counts recorded; is the engine instrumented?"
    );
    faultnet_obs::reset();

    for (i, experiment) in registry().iter().enumerate() {
        assert_eq!(
            baseline[i], counted[i],
            "{}: counting changed the report bytes",
            experiment.binary
        );
        assert_eq!(
            baseline[i], traced[i],
            "{}: span tracing changed the report bytes",
            experiment.binary
        );
    }
}

#[test]
fn tracing_is_transparent_across_the_wall_clock_knobs() {
    let _guard = OBS_LOCK.lock().unwrap();
    faultnet_obs::reset();
    // The knob-equivalence contract (threads / census-threads / trial-batch
    // never change a byte) must survive instrumentation: the worker
    // closures carry per-thread flush calls, and those must be as invisible
    // as the counters themselves.
    let scalar_quiet = rendered_zoo(1, 1, 0);
    faultnet_obs::enable_tracing();
    let fanned_traced = rendered_zoo(4, 2, 64);
    faultnet_obs::reset();
    assert_eq!(
        scalar_quiet, fanned_traced,
        "tracing + parallel knobs changed a report byte"
    );
}

#[test]
fn chrome_trace_captures_the_experiment_spans() {
    let _guard = OBS_LOCK.lock().unwrap();
    faultnet_obs::reset();
    faultnet_obs::enable_tracing();
    let report =
        faultnet_experiments::hypercube_giant::HypercubeGiantExperiment::with_effort(Effort::Quick)
            .run();
    assert!(!report.render().is_empty());
    let trace = faultnet_obs::chrome_trace();
    faultnet_obs::reset();
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.ends_with("]}\n"), "{trace}");
    for span in ["experiment.hypercube_giant", "hypercube_giant.point"] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "span {span} missing from trace:\n{trace}"
        );
    }
}
