//! Scan the hypercube fault exponent and watch the routing phase transition
//! (Theorem 3) appear.
//!
//! For `p = n^{-α}` the giant component exists for every `α < 1`, but
//! *finding* paths is only cheap for `α < 1/2`. This example sweeps `α`,
//! measures the segment router's conditioned cost with a probe budget, and
//! renders the resulting curve as an ASCII figure together with the measured
//! transition location.
//!
//! ```text
//! cargo run --release --example phase_transition_scan
//! ```

use faultnet::prelude::*;
use faultnet_analysis::figure::{AsciiFigure, Scale, Series};
use faultnet_analysis::phase::steepest_rise;
use faultnet_experiments::hypercube_transition::measure_alpha_point;

fn main() {
    let dimension = 12;
    let trials = 15;
    let budget = 60_000;
    let alphas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let threads = faultnet_experiments::cli::resolve_threads(0);

    println!(
        "hypercube n = {dimension}: sweeping p = n^-alpha with a {budget}-probe budget, {trials} trials per point, {threads} threads"
    );
    println!();

    let mut table = Table::new([
        "alpha",
        "p",
        "pair connected",
        "within budget",
        "mean cost (probes)",
    ]);
    let mut curve = Vec::new();
    let mut log_curve = Vec::new();
    for (i, &alpha) in alphas.iter().enumerate() {
        let point = measure_alpha_point(
            dimension,
            alpha,
            trials,
            budget,
            31_000 + i as u64,
            threads,
            1,
        );
        table.push_row([
            format!("{alpha:.1}"),
            format!("{:.4}", point.p),
            format!("{:.2}", point.connectivity_rate),
            format!("{:.2}", point.success_rate),
            format!("{:.1}", point.mean_cost),
        ]);
        if point.mean_cost.is_finite() {
            curve.push((alpha, point.mean_cost));
            log_curve.push((alpha, point.mean_cost.ln()));
        }
    }
    println!("{table}");

    let figure = AsciiFigure::new("segment-router cost vs alpha (log y)")
        .with_scales(Scale::Linear, Scale::Log)
        .with_size(60, 16)
        .with_series(Series::new("cost", curve));
    println!("{}", figure.render());

    if let Some(alpha_star) = steepest_rise(&log_curve) {
        println!(
            "measured transition (steepest rise of log cost): alpha ≈ {alpha_star:.2}; \
             Theorem 3 locates it at alpha = 0.5 as n → ∞"
        );
    }
}
