//! Routing across a mesh fabric with failed links (Theorem 4 in practice).
//!
//! A network-on-chip / cluster fabric laid out as a 2-d mesh loses links to
//! manufacturing defects or cable failures. Theorem 4 says that as long as
//! the per-link failure probability is below 1/2 (the 2-d percolation
//! threshold), a purely local repair strategy — walk the planned route and
//! search around each failed segment — finds a detour with expected cost
//! proportional to the route length, no matter how close to the threshold the
//! failure rate is.
//!
//! The example routes between distant points of a 61×61 mesh at several
//! failure rates and compares the landmark (Theorem 4) router with flooding,
//! reporting probes per unit distance and the length overhead of the detours.
//!
//! ```text
//! cargo run --release --example mesh_fabric_repair
//! ```

use faultnet::prelude::*;

fn main() {
    let side = 61;
    let fabric = Mesh::new(2, side);
    let u = fabric.vertex_at(&[5, 30]);
    let v = fabric.vertex_at(&[55, 30]);
    let distance = fabric.distance(u, v).unwrap();
    let trials = 25;

    println!(
        "mesh fabric {side}x{side}: routing a {distance}-hop east-west path, {} trials per row",
        trials
    );
    println!();

    let mut table = Table::new([
        "link failure q",
        "pair connected",
        "landmark probes",
        "probes / hop",
        "detour length / shortest",
        "flood probes",
    ]);

    for failure in [0.1, 0.25, 0.35, 0.45, 0.48] {
        let p = 1.0 - failure;
        let config = PercolationConfig::new(p, 9_000 + (failure * 1000.0) as u64);
        let harness = ComplexityHarness::new(fabric, config);
        let landmark = harness.measure(&MeshLandmarkRouter::new(), u, v, trials);
        let flood = harness.measure(&FloodRouter::new(), u, v, trials);

        // Average detour length of the landmark router's returned paths.
        let mut stretch_total = 0.0;
        let mut stretch_count = 0u32;
        for t in 0..trials {
            let seed = config.seed().wrapping_add(t as u64);
            let sampler = config.with_seed(seed).sampler();
            let mut engine = ProbeEngine::local(&fabric, &sampler, u);
            if let Ok(outcome) = MeshLandmarkRouter::new().route(&mut engine, u, v) {
                if let Some(path) = outcome.path {
                    stretch_total += path.len() as f64 / distance as f64;
                    stretch_count += 1;
                }
            }
        }
        let stretch = if stretch_count == 0 {
            f64::NAN
        } else {
            stretch_total / stretch_count as f64
        };

        table.push_row([
            format!("{failure:.2}"),
            format!("{:.2}", landmark.connectivity_rate()),
            format!("{:.1}", landmark.mean_probes()),
            format!("{:.2}", landmark.mean_probes() / distance as f64),
            format!("{stretch:.2}"),
            format!("{:.1}", flood.mean_probes()),
        ]);
    }
    println!("{table}");
    println!(
        "Probes per hop stay bounded all the way up to the percolation threshold at q = 0.5,\n\
         which is Theorem 4's claim; flooding instead pays for the whole fabric area."
    );
}
