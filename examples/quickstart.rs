//! Quickstart: percolate a hypercube, route between antipodal vertices with
//! both a naive and a smart local router, and print what it cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use faultnet::prelude::*;

fn main() {
    // A 12-dimensional hypercube in which every link fails independently
    // with probability 0.4 (i.e. survives with p = 0.6).
    let cube = Hypercube::new(12);
    let config = PercolationConfig::new(0.6, 2024);
    let (u, v) = cube.canonical_pair();

    println!("graph: {}", cube.name());
    println!(
        "vertices: {}, edges: {}, routing pair at Hamming distance {}",
        cube.num_vertices(),
        cube.num_edges(),
        cube.distance(u, v).unwrap()
    );
    println!(
        "edge retention probability p = {}, seed = {}",
        config.p(),
        config.seed()
    );
    println!();

    // Measure two local routers under the paper's Definition 2: probe counts
    // conditioned on the endpoints being connected.
    let harness = ComplexityHarness::new(cube, config);
    let trials = 30;

    let flood = harness.measure(&FloodRouter::new(), u, v, trials);
    let segment = harness.measure(&SegmentRouter::default(), u, v, trials);

    let mut table = Table::new([
        "router",
        "locality",
        "success rate",
        "mean probes",
        "median probes",
        "max probes",
    ])
    .with_title(format!(
        "routing complexity over {trials} trials (connected in {} of them)",
        flood.conditioned_trials()
    ));
    for stats in [&flood, &segment] {
        table.push_row([
            stats.router().to_string(),
            "local".to_string(),
            format!("{:.2}", stats.success_rate()),
            format!("{:.1}", stats.mean_probes()),
            stats
                .median_probes()
                .map_or("-".to_string(), |m| m.to_string()),
            stats
                .max_probes()
                .map_or("-".to_string(), |m| m.to_string()),
        ]);
    }
    println!("{table}");

    println!(
        "The segment router (Theorem 3(ii)) pays roughly per hop along a fault-free geodesic,\n\
         while flooding pays for every edge of the discovered component — the gap grows quickly\n\
         with the dimension as long as p stays above n^(-1/2)."
    );
}
