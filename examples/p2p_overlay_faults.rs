//! P2P overlay under churn — the scenario motivating the paper's
//! introduction.
//!
//! Hypercubic overlays (Chord-like, Pastry-like) route greedily along a
//! virtual hypercube. When a fraction of the links is down (node churn,
//! partitions), two questions matter to the overlay designer:
//!
//! 1. Are the source and the target still connected at all?
//! 2. Can the overlay's *local* routing still find a path cheaply, or does it
//!    degenerate into flooding the network?
//!
//! This example sweeps the link-failure probability on a hypercube overlay
//! and prints, per failure level: connectivity of a far-apart pair, the cost
//! of greedy routing (with detours), the cost of the paper's segment router,
//! and the cost of flooding — illustrating Theorem 3's practical content:
//! below a critical fault level smart local routing stays cheap, above it
//! every local strategy degrades towards flooding.
//!
//! ```text
//! cargo run --release --example p2p_overlay_faults
//! ```

use faultnet::prelude::*;
use faultnet_routing::hypercube::GreedyHypercubeRouter;

fn main() {
    let dimension = 12;
    let overlay = Hypercube::new(dimension);
    let (u, v) = overlay.canonical_pair();
    let trials = 25;

    println!(
        "hypercubic P2P overlay: {} nodes, {} links, routing across {} overlay hops",
        overlay.num_vertices(),
        overlay.num_edges(),
        overlay.distance(u, v).unwrap()
    );
    println!();

    let mut table = Table::new([
        "link failure q",
        "pair connected",
        "greedy success",
        "greedy probes",
        "segment probes",
        "flood probes",
    ])
    .with_title(format!("{trials} percolation instances per row"));

    for failure in [0.05, 0.2, 0.4, 0.6, 0.7, 0.8] {
        let p = 1.0 - failure;
        let harness = ComplexityHarness::new(
            overlay,
            PercolationConfig::new(p, 7_000 + (failure * 100.0) as u64),
        );
        let greedy = harness.measure(&GreedyHypercubeRouter::with_detours(50_000), u, v, trials);
        let segment = harness.measure(&SegmentRouter::default(), u, v, trials);
        let flood = harness.measure(&FloodRouter::new(), u, v, trials);
        table.push_row([
            format!("{failure:.2}"),
            format!("{:.2}", segment.connectivity_rate()),
            format!("{:.2}", greedy.success_rate()),
            format!("{:.1}", greedy.mean_probes()),
            format!("{:.1}", segment.mean_probes()),
            format!("{:.1}", flood.mean_probes()),
        ]);
    }
    println!("{table}");
    println!(
        "Reading the table: as long as the failure probability stays below ~1 - n^(-1/2)\n\
         the segment router's cost stays within a small factor of the hop count, so exact-match\n\
         routing remains viable. Past that point its cost approaches flooding — which is the\n\
         paper's advice that heavily-faulty overlays should fall back to gossip/flooding for\n\
         lookups rather than rely on routed exact search."
    );
}
