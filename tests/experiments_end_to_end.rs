//! End-to-end runs of every experiment at quick effort, checking that the
//! reports carry the qualitative conclusions recorded in EXPERIMENTS.md.

use faultnet::experiments::{
    chemical_distance::ChemicalDistanceExperiment,
    churn::ChurnExperiment,
    double_tree::DoubleTreeExperiment,
    fault_models::FaultModelsExperiment,
    gnp::GnpExperiment,
    hypercube_giant::HypercubeGiantExperiment,
    hypercube_lower_bound::HypercubeLowerBoundExperiment,
    hypercube_transition::HypercubeTransitionExperiment,
    mesh_routing::MeshRoutingExperiment,
    mesh_threshold::MeshThresholdExperiment,
    open_questions::OpenQuestionsExperiment,
    suite::{registry, run_all_reports},
    Effort,
};

/// The determinism contract of `run_all --quick`: the full rendered output
/// (plain text and Markdown) is byte-identical across `--threads 1/2/4`.
/// Previously only documented in docs/EXPERIMENTS.md; now enforced here.
/// Because `run_all_reports` enumerates the experiment registry, this
/// covers every registered experiment — including `exp_fault_models`, i.e.
/// every fault model's parallel merge.
#[test]
fn run_all_quick_output_is_byte_identical_across_thread_counts() {
    let render_suite =
        |threads: usize, census_threads: usize, trial_batch: usize| -> (String, String) {
            let reports = run_all_reports(Effort::Quick, threads, census_threads, trial_batch);
            let text: String = reports
                .iter()
                .map(|r| r.render())
                .collect::<Vec<_>>()
                .join("\n");
            let markdown: String = reports
                .iter()
                .map(|r| r.render_markdown())
                .collect::<Vec<_>>()
                .join("\n");
            (text, markdown)
        };
    let baseline = render_suite(1, 1, 0);
    assert_eq!(
        baseline,
        render_suite(2, 1, 0),
        "threads=2 diverged from threads=1"
    );
    assert_eq!(
        baseline,
        render_suite(4, 1, 0),
        "threads=4 diverged from threads=1"
    );
    // The intra-census knob is held to the same contract as the trial
    // fan-out: `--census-threads 2` must not move a byte of any experiment's
    // rendered output (this is the end-to-end half of the parallel-census
    // equivalence suite in crates/percolation/tests/census_equivalence.rs).
    assert_eq!(
        baseline,
        render_suite(1, 2, 0),
        "census-threads=2 diverged from census-threads=1"
    );
    assert_eq!(
        baseline,
        render_suite(2, 4, 0),
        "threads=2 + census-threads=4 diverged from the sequential baseline"
    );
    // And the trial-batched engine: `--trial-batch 64` switches E8a/E8b/E11
    // onto the multispin substrate, which must also not move a byte (the
    // end-to-end half of crates/percolation/tests/trial_equivalence.rs).
    assert_eq!(
        baseline,
        render_suite(1, 1, 64),
        "trial-batch=64 diverged from the scalar engine"
    );
    assert_eq!(
        baseline,
        render_suite(2, 2, 7),
        "threads=2 + census-threads=2 + trial-batch=7 diverged from the sequential baseline"
    );
}

#[test]
fn hypercube_transition_report() {
    let report = HypercubeTransitionExperiment::quick().run();
    assert!(!report.tables().is_empty());
    assert!(!report.figures().is_empty());
    assert!(report.render().contains("α"));
    assert!(report.render_markdown().contains("### "));
}

#[test]
fn hypercube_lower_bound_report_is_sound() {
    let report = HypercubeLowerBoundExperiment::quick().run();
    assert!(report
        .notes()
        .iter()
        .any(|n| n.contains("Soundness check passed")));
}

#[test]
fn mesh_routing_report_has_near_linear_exponent() {
    let report = MeshRoutingExperiment::quick().run();
    // At least one fitted exponent should be close to 1 (between 0.5 and 1.6
    // at quick sizes).
    let has_linearish = report.notes().iter().any(|note| {
        note.split("n^")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .and_then(|num| num.parse::<f64>().ok())
            .is_some_and(|exp| (0.5..=1.6).contains(&exp))
    });
    assert!(has_linearish, "notes: {:?}", report.notes());
}

#[test]
fn chemical_distance_report() {
    let report = ChemicalDistanceExperiment::quick().run();
    assert!(report.notes().iter().any(|n| n.contains("bounded")));
}

#[test]
fn double_tree_report_shows_both_growth_laws() {
    let report = DoubleTreeExperiment::quick().run();
    assert!(report.notes().iter().any(|n| n.contains("Theorem 7")));
    assert!(report.notes().iter().any(|n| n.contains("Theorem 9")));
}

#[test]
fn gnp_report_exponents_are_ordered() {
    let report = GnpExperiment::quick().run();
    let extract = |needle: &str| -> Option<f64> {
        report
            .notes()
            .iter()
            .find(|n| n.contains(needle))?
            .split("n^")
            .nth(1)?
            .split(' ')
            .next()?
            .parse()
            .ok()
    };
    let local_exp = extract("Theorem 10").expect("local exponent note");
    let oracle_exp = extract("Theorem 11").expect("oracle exponent note");
    assert!(
        local_exp > oracle_exp,
        "local exponent {local_exp} should exceed oracle exponent {oracle_exp}"
    );
    assert!(local_exp > 1.2, "local exponent too small: {local_exp}");
    assert!(oracle_exp < 2.0, "oracle exponent too large: {oracle_exp}");
}

#[test]
fn hypercube_giant_report() {
    let report = HypercubeGiantExperiment::quick().run();
    assert!(report.tables().len() >= 2);
    assert!(!report.notes().is_empty());
}

#[test]
fn mesh_threshold_report() {
    let report = MeshThresholdExperiment::quick().run();
    assert!(report.render().contains("estimated p_c"));
}

#[test]
fn open_questions_report() {
    let report = OpenQuestionsExperiment::quick().run();
    assert_eq!(report.tables().len(), 4);
}

#[test]
fn fault_models_report_compares_all_models() {
    let report = FaultModelsExperiment::quick().run();
    for model in [
        "bernoulli-edges",
        "bernoulli-nodes",
        "correlated-regions",
        "adversarial-budget",
    ] {
        assert!(
            report.render().contains(model),
            "report is missing the {model} column"
        );
    }
}

#[test]
fn churn_report_stays_routable_and_is_engine_invariant() {
    let report = ChurnExperiment::quick().run();
    // One table per family, each a full time series.
    assert!(report.tables().len() >= 2);
    assert!(report.render().contains("under churn"));
    // Stationary-matched rates keep the quick hypercube supercritical: the
    // giant fraction in the final timestep stays macroscopic.
    let last_row = report.tables()[0].rows().last().unwrap().clone();
    let giant: f64 = last_row[2].parse().unwrap();
    assert!(giant > 0.5, "giant fraction collapsed under churn: {giant}");
    // The rescan engine is the end-to-end equivalence cross-check: forcing a
    // from-scratch census per timestep must not move a byte.
    let rescan = ChurnExperiment::quick().with_rescan(true).run();
    assert_eq!(report.render(), rescan.render());
    assert_eq!(report.render_markdown(), rescan.render_markdown());
}

/// `run_all` derives from the registry, so the report sequence and the
/// registry must agree one to one — no second hand-maintained list.
#[test]
fn run_all_enumerates_the_registry() {
    let experiments = registry();
    let reports = run_all_reports(Effort::Quick, 2, 1, 0);
    assert_eq!(reports.len(), experiments.len());
    assert!(experiments.iter().any(|e| e.binary == "exp_fault_models"));
    assert!(experiments.iter().any(|e| e.binary == "exp_churn"));
    assert!(experiments.iter().any(|e| e.binary == "exp_real_world"));
    // E13 runs last in registry order and is the real-world matrix.
    assert!(reports.last().unwrap().name().contains("real-world"));
}
