//! Cross-crate integration tests: small-scale checks that each reproduced
//! theorem's *shape* (who wins, which way the curves bend) already shows up
//! end-to-end through the public facade API.

use faultnet::prelude::*;
use faultnet_percolation::branching::double_tree_critical_probability;
use faultnet_routing::router::Router;

/// Theorem 4: on the supercritical mesh the landmark router's cost grows
/// roughly linearly with the distance, far below the flooding cost.
#[test]
fn mesh_routing_is_linear_ish_and_beats_flooding() {
    let p = 0.75;
    let mut per_distance = Vec::new();
    for (side, dist) in [(15u64, 12u64), (27, 24), (51, 48)] {
        let mesh = Mesh::new(2, side);
        let u = mesh.vertex_at(&[1, side / 2]);
        let v = mesh.vertex_at(&[1 + dist, side / 2]);
        let harness = ComplexityHarness::new(mesh, PercolationConfig::new(p, 100 + side));
        let landmark = harness.measure(&MeshLandmarkRouter::new(), u, v, 15);
        assert!(landmark.conditioned_trials() > 5);
        assert_eq!(landmark.success_rate(), 1.0);
        per_distance.push(landmark.mean_probes() / dist as f64);
        if dist == 24 {
            let flood = harness.measure(&FloodRouter::new(), u, v, 15);
            assert!(landmark.mean_probes() < flood.mean_probes());
        }
    }
    // Probes per hop must not blow up as the distance quadruples.
    assert!(
        per_distance[2] < per_distance[0] * 3.0,
        "probes per hop grew too fast: {per_distance:?}"
    );
}

/// Theorem 3: the hypercube segment router is dramatically cheaper in the
/// easy regime (alpha < 1/2) than in the hard regime (alpha > 1/2).
#[test]
fn hypercube_transition_direction() {
    let n = 11u32;
    let cube = Hypercube::new(n);
    let (u, v) = cube.canonical_pair();
    let measure = |alpha: f64, seed: u64| {
        let p = (n as f64).powf(-alpha);
        let harness =
            ComplexityHarness::new(cube, PercolationConfig::new(p, seed)).with_probe_budget(80_000);
        let stats = harness.measure(&SegmentRouter::for_alpha(alpha, 16), u, v, 10);
        let conditioned = stats.conditioned_trials().max(1) as f64;
        (stats.probe_counts().iter().sum::<u64>() as f64
            + stats.budget_exhaustions() as f64 * 80_000.0)
            / conditioned
    };
    let easy = measure(0.2, 41);
    let hard = measure(0.8, 42);
    assert!(
        hard > 3.0 * easy,
        "expected a big cost gap across the transition: easy {easy}, hard {hard}"
    );
}

/// Lemma 6 + Theorems 7 and 9 on the double tree: the connectivity threshold
/// sits near 1/sqrt(2), and the oracle router beats the local router by a
/// widening margin as the depth grows.
#[test]
fn double_tree_local_vs_oracle_gap() {
    let p = 0.8;
    assert!(p > double_tree_critical_probability());
    let mut ratios = Vec::new();
    for depth in [5u32, 8] {
        let tt = DoubleBinaryTree::new(depth);
        let (x, y) = tt.roots();
        let harness = ComplexityHarness::new(tt, PercolationConfig::new(p, 7 + depth as u64));
        let local = harness.measure(&LeafPenetrationRouter::new(), x, y, 25);
        let oracle = harness.measure(&PairedDfsOracleRouter::new(), x, y, 25);
        assert_eq!(local.success_rate(), 1.0);
        assert!(local.conditioned_trials() > 5);
        if oracle.successes() > 0 {
            ratios.push(local.mean_probes() / oracle.mean_probes());
        }
    }
    assert!(!ratios.is_empty());
    assert!(
        ratios.last().unwrap() > ratios.first().unwrap(),
        "the local/oracle cost ratio should widen with depth: {ratios:?}"
    );
}

/// Theorems 10 and 11 on G(n, p): the oracle router wins, and its advantage
/// grows with n (exponent 1.5 vs 2).
#[test]
fn gnp_oracle_advantage_grows_with_n() {
    let c = 2.0;
    let mut advantage = Vec::new();
    for n in [80u64, 320] {
        let k = CompleteGraph::new(n);
        let (u, v) = k.canonical_pair();
        let harness = ComplexityHarness::new(k, PercolationConfig::new(c / n as f64, n));
        let local = harness.measure(&IncrementalLocalRouter::new(), u, v, 12);
        let oracle = harness.measure(&BidirectionalGrowthRouter::new(), u, v, 12);
        assert_eq!(local.success_rate(), 1.0);
        assert_eq!(oracle.success_rate(), 1.0);
        advantage.push(local.mean_probes() / oracle.mean_probes());
    }
    assert!(advantage[0] > 1.0, "oracle should already win at n = 80");
    assert!(
        advantage[1] > advantage[0],
        "oracle advantage should grow with n: {advantage:?}"
    );
}

/// The conditioning of Definition 2 is enforced end to end: with p = 0 no
/// trial is conditioned, with p = 1 every trial is, and the probe counts of a
/// complete router are reproducible for a fixed seed.
#[test]
fn conditioning_and_reproducibility() {
    let cube = Hypercube::new(8);
    let (u, v) = cube.canonical_pair();
    let empty = ComplexityHarness::new(cube, PercolationConfig::new(0.0, 1)).measure(
        &FloodRouter::new(),
        u,
        v,
        5,
    );
    assert_eq!(empty.conditioned_trials(), 0);
    let full = ComplexityHarness::new(cube, PercolationConfig::new(1.0, 1)).measure(
        &FloodRouter::new(),
        u,
        v,
        5,
    );
    assert_eq!(full.conditioned_trials(), 5);

    let a = ComplexityHarness::new(cube, PercolationConfig::new(0.5, 99)).measure(
        &SegmentRouter::default(),
        u,
        v,
        10,
    );
    let b = ComplexityHarness::new(cube, PercolationConfig::new(0.5, 99)).measure(
        &SegmentRouter::default(),
        u,
        v,
        10,
    );
    assert_eq!(a.probe_counts(), b.probe_counts());
}

/// Locality is enforced through the whole stack: an oracle-only algorithm
/// (paired DFS) run through a *local* probe engine is rejected by the engine
/// rather than silently allowed to cheat.
#[test]
fn locality_violations_are_caught() {
    let tt = DoubleBinaryTree::new(4);
    let (x, y) = tt.roots();
    let sampler = PercolationConfig::new(0.9, 3).sampler();
    let mut local_engine = ProbeEngine::local(&tt, &sampler, x);
    let result = PairedDfsOracleRouter::new().route(&mut local_engine, x, y);
    // The mirror edge of the very first probe touches only second-tree
    // vertices, which a local engine must reject.
    assert!(result.is_err(), "a local engine must reject oracle probes");
}

/// The facade prelude exposes a working end-to-end path for every major type
/// (smoke test for the public API surface).
#[test]
fn facade_prelude_smoke_test() {
    let cube = Hypercube::new(6);
    let cfg = PercolationConfig::new(0.7, 5);
    let sampler = cfg.sampler();
    let census = ComponentCensus::compute(&cube, &sampler);
    assert!(census.giant_fraction() > 0.0);
    let gp = PercolatedGraph::new(&cube, &sampler);
    let (u, v) = cube.canonical_pair();
    assert!(gp.open_degree(u) <= cube.degree(u));
    let mut engine = ProbeEngine::local(&cube, &sampler, u);
    let outcome = FloodRouter::new().route(&mut engine, u, v).unwrap();
    assert_eq!(outcome.probes, engine.probes_used());
    let summary = Summary::from_counts([1u64, 2, 3]);
    assert_eq!(summary.median(), 2.0);
    let fit = fit_power_law(&[(1.0, 2.0), (2.0, 8.0), (4.0, 32.0)]).unwrap();
    assert!((fit.exponent - 2.0).abs() < 1e-9);
    let sweep = Sweep::over(vec![1u32, 2, 3]);
    assert_eq!(sweep.run(|x| x + 1).len(), 3);
    let mut table = Table::new(["a"]);
    table.push_row(["1"]);
    assert_eq!(table.num_rows(), 1);
    let line = fit_line(&[(0.0, 0.0), (1.0, 2.0)]).unwrap();
    assert!((line.slope - 2.0).abs() < 1e-12);
    let e = EdgeId::new(VertexId(0), VertexId(1));
    assert!(e.touches(VertexId(0)));
}
