//! # faultnet
//!
//! A reproduction of *"Routing Complexity of Faulty Networks"* (Angel,
//! Benjamini, Ofek, Wieder — PODC 2005).
//!
//! The crate is a facade over the workspace members:
//!
//! * [`topology`] — the graph families studied by the paper (hypercube,
//!   d-dimensional mesh, double binary tree, complete graph, …).
//! * [`percolation`] — independent edge-failure substrate and percolation
//!   analytics (components, thresholds, chemical distance, branching
//!   processes, and incremental connectivity under fail/repair churn).
//! * [`faultmodel`] — pluggable fault models beyond the paper's Bernoulli
//!   edge faults: node (router) failures, correlated fault regions, and
//!   budgeted adversarial cuts, all flowing through the same probe model
//!   and measurement harness — plus dynamic lowerings that evolve any
//!   static model over time.
//! * [`routing`] — the paper's core contribution: the probe model, local and
//!   oracle routing algorithms, the Lemma 5 lower-bound machinery, and the
//!   routing-complexity measurement harness.
//! * [`analysis`] — statistics, parameter sweeps, and table/figure output.
//! * [`experiments`] — one reproducible experiment per paper result.
//! * [`server`] — a long-lived HTTP query service over the measurement
//!   engines, with cached censuses, request coalescing, and `/metrics`.
//! * [`obs`] — the runtime-gated instrumentation layer (spans, counters,
//!   log₂ histograms) threaded through the engines' hot paths, with a
//!   zero-perturbation guarantee: enabled or not, it never changes a
//!   measurement byte.
//!
//! ## Quickstart
//!
//! ```
//! use faultnet::prelude::*;
//!
//! // A 10-dimensional hypercube where each edge fails with probability 0.5.
//! let cube = Hypercube::new(10);
//! let cfg = PercolationConfig::new(0.5, 42);
//!
//! // Route between antipodal vertices with the flooding (BFS) router,
//! // conditioning on the two endpoints being connected.
//! let harness = ComplexityHarness::new(cube, cfg);
//! let u = VertexId(0);
//! let v = VertexId((1 << 10) - 1);
//! let stats = harness.measure(&FloodRouter::default(), u, v, 20);
//! assert!(stats.success_rate() > 0.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faultnet_analysis as analysis;
pub use faultnet_experiments as experiments;
pub use faultnet_faultmodel as faultmodel;
pub use faultnet_obs as obs;
pub use faultnet_percolation as percolation;
pub use faultnet_routing as routing;
pub use faultnet_server as server;
pub use faultnet_topology as topology;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use faultnet_analysis::{
        regression::{fit_line, fit_power_law},
        stats::Summary,
        sweep::Sweep,
        table::Table,
    };
    pub use faultnet_faultmodel::{
        AdversarialBudget, BernoulliEdges, BernoulliNodes, Churned, CorrelatedRegions,
        DynamicFaultModel, FaultInstance, FaultModel, FaultModelSpec, PairPlacement, Resampled,
    };
    pub use faultnet_percolation::{
        components::ComponentCensus,
        dynamic::{ChurnEvent, ChurnProcess, ChurnSchedule, EventKind, IncrementalCensus},
        sample::{BitsetSample, EdgeSampler},
        subgraph::PercolatedGraph,
        trial_batch::{LaneView, TrialBatch},
        union_find::{AtomicUnionFind, RewindableUnionFind, UnionFind},
        PercolationConfig,
    };
    pub use faultnet_routing::{
        bfs::{BidirectionalOracleBfs, FloodRouter},
        complexity::{ComplexityHarness, ComplexityStats},
        dfs::DepthFirstRouter,
        gnp::{BidirectionalGrowthRouter, IncrementalLocalRouter},
        hypercube::{GreedyHypercubeRouter, SegmentRouter},
        mesh::MeshLandmarkRouter,
        probe::ProbeEngine,
        router::{Locality, RouteOutcome, Router},
        tree::{LeafPenetrationRouter, PairedDfsOracleRouter},
    };
    pub use faultnet_topology::{
        complete::CompleteGraph, double_tree::DoubleBinaryTree, hypercube::Hypercube, mesh::Mesh,
        EdgeId, Topology, VertexId,
    };
}
